// Behavioural tests for ConfigurableLock on the deterministic simulator:
// every scheduler kind, every waiting policy, reconfiguration semantics
// (including the configuration delay), advisory locks, active locks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;

using Lock = ConfigurableLock<SimPlatform>;

Lock::Options with_scheduler(SchedulerKind k,
                             LockAttributes a = LockAttributes::spin()) {
  Lock::Options o;
  o.scheduler = k;
  o.attributes = a;
  o.placement = Placement::on(0);
  o.monitor_enabled = true;
  return o;
}

// ------------------------------------------------------------------------
// Mutual exclusion across the configuration space (parameterized sweep).
// ------------------------------------------------------------------------

struct MutexCase {
  SchedulerKind sched;
  LockAttributes attrs;
  const char* name;
};

class MutualExclusionSweep : public ::testing::TestWithParam<MutexCase> {};

TEST_P(MutualExclusionSweep, NoTwoThreadsInCriticalSection) {
  const auto& param = GetParam();
  Machine m(MachineParams::test_machine(8));
  Lock lock(m, with_scheduler(param.sched, param.attrs));
  int in_cs = 0, max_in_cs = 0;
  std::uint64_t total = 0;
  constexpr int kThreads = 6, kIters = 15;
  for (int i = 0; i < kThreads; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < kIters; ++j) {
        ASSERT_TRUE(lock.lock(t));
        max_in_cs = std::max(max_in_cs, ++in_cs);
        m.compute(t, 40);
        ++total;
        --in_cs;
        lock.unlock(t);
        m.compute(t, 25);
      }
    });
  }
  m.run();
  EXPECT_EQ(max_in_cs, 1);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kIters));
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.acquisitions, total);
  EXPECT_EQ(s.releases, total);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MutualExclusionSweep,
    ::testing::Values(
        MutexCase{SchedulerKind::kNone, LockAttributes::spin(), "cent_spin"},
        MutexCase{SchedulerKind::kNone, LockAttributes::backoff_spin(500),
                  "cent_backoff"},
        MutexCase{SchedulerKind::kNone, LockAttributes::blocking(),
                  "cent_blocking"},
        MutexCase{SchedulerKind::kNone, LockAttributes::combined(5, 2000),
                  "cent_combined"},
        MutexCase{SchedulerKind::kFcfs, LockAttributes::spin(), "fcfs_spin"},
        MutexCase{SchedulerKind::kFcfs, LockAttributes::blocking(),
                  "fcfs_blocking"},
        MutexCase{SchedulerKind::kFcfs, LockAttributes::combined(10, 3000),
                  "fcfs_combined"},
        MutexCase{SchedulerKind::kPriorityQueue, LockAttributes::spin(),
                  "prioq_spin"},
        MutexCase{SchedulerKind::kPriorityThreshold, LockAttributes::spin(),
                  "thresh_spin"},
        MutexCase{SchedulerKind::kHandoff, LockAttributes::spin(),
                  "handoff_spin"},
        MutexCase{SchedulerKind::kHandoff, LockAttributes::blocking(),
                  "handoff_blocking"}),
    [](const ::testing::TestParamInfo<MutexCase>& param_info) {
      return param_info.param.name;
    });

// ------------------------------------------------------------------------
// Scheduler behaviours.
// ------------------------------------------------------------------------

// Spawns a holder on proc 0 that keeps the lock while `n` waiters (procs
// 1..n) queue in a staggered, known arrival order; returns grant order.
template <typename Setup>
std::vector<int> grant_order(Lock::Options opts, int n, Setup setup,
                             Nanos hold = 400'000) {
  auto m = std::make_unique<Machine>(MachineParams::test_machine(
      static_cast<std::uint32_t>(n + 1)));
  Lock lock(*m, opts);
  std::vector<int> order;
  m->spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m->compute(t, hold);
    lock.unlock(t);
  });
  for (int i = 1; i <= n; ++i) {
    m->spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      setup(lock, t, i);  // per-waiter priority etc.
      m->compute(t, static_cast<Nanos>(3000 * i));  // staggered arrival
      ASSERT_TRUE(lock.lock(t));
      order.push_back(i);
      m->compute(t, 1000);
      lock.unlock(t);
    });
  }
  m->run();
  return order;
}

TEST(FcfsScheduler, GrantsInArrivalOrder) {
  const auto order = grant_order(with_scheduler(SchedulerKind::kFcfs), 6,
                                 [](Lock&, Thread&, int) {});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(PriorityQueueScheduler, GrantsHighestPriorityFirst) {
  // Waiter i has priority i: highest arrives last but is granted first.
  const auto order =
      grant_order(with_scheduler(SchedulerKind::kPriorityQueue), 5,
                  [](Lock&, Thread& t, int i) { t.set_priority(i); });
  EXPECT_EQ(order, (std::vector<int>{5, 4, 3, 2, 1}));
}

TEST(PriorityQueueScheduler, FifoAmongEqualPriorities) {
  const auto order =
      grant_order(with_scheduler(SchedulerKind::kPriorityQueue), 4,
                  [](Lock&, Thread& t, int) { t.set_priority(7); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(HandoffScheduler, FollowsReleaserHints) {
  // Holder hands off to 3; 3 hands to 1; 1 hands to 2 (the remaining one).
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kHandoff));
  std::vector<int> order;
  std::vector<ThreadId> tids(4, kInvalidThread);
  m.spawn(0, [&](Thread& t) {
    tids[0] = t.self();
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 300'000);  // waiters 1..3 queue meanwhile
    lock.unlock_to(t, tids[3]);
  });
  for (int i = 1; i <= 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      tids[static_cast<std::size_t>(i)] = t.self();
      m.compute(t, static_cast<Nanos>(2000 * i));
      ASSERT_TRUE(lock.lock(t));
      order.push_back(i);
      m.compute(t, 1000);
      if (i == 3) {
        lock.unlock_to(t, tids[1]);
      } else {
        lock.unlock(t);  // no hint: FCFS fallback
      }
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(PriorityThresholdScheduler, BelowThresholdWaitersAreIneligible) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kPriorityThreshold));
  std::vector<int> events;
  // Holder raises the threshold above the low waiter's priority before
  // releasing; the low waiter must not be granted until it drops.
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 200'000);          // low (prio 1) and high (prio 10) queue
    lock.set_priority_threshold(t, 5);
    lock.unlock(t);                 // grants high only
    m.compute(t, 400'000);
    events.push_back(99);           // marker: about to drop the threshold
    lock.set_priority_threshold(t, 0);  // re-runs selection on the free lock
  });
  m.spawn(1, [&](Thread& t) {  // low priority
    t.set_priority(1);
    m.compute(t, 3000);
    ASSERT_TRUE(lock.lock(t));
    events.push_back(1);
    lock.unlock(t);
  });
  m.spawn(2, [&](Thread& t) {  // high priority, arrives later
    t.set_priority(10);
    m.compute(t, 6000);
    ASSERT_TRUE(lock.lock(t));
    events.push_back(10);
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(events, (std::vector<int>{10, 99, 1}));
}

// ------------------------------------------------------------------------
// Waiting policies.
// ------------------------------------------------------------------------

TEST(WaitingPolicy, BlockingWaitersSleepAndAreWoken) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m,
            with_scheduler(SchedulerKind::kFcfs, LockAttributes::blocking()));
  std::uint64_t done = 0;
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(500 * i));
      ASSERT_TRUE(lock.lock(t));
      m.compute(t, 30'000);
      ++done;
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(done, 4u);
  const LockStats s = lock.monitor().snapshot();
  EXPECT_GE(s.blocks, 3u);
  EXPECT_GE(s.wakeups, 3u);
  EXPECT_EQ(s.spin_probes, 0u) << "pure sleep must not spin";
}

TEST(WaitingPolicy, PureSpinNeverBlocks) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs, LockAttributes::spin()));
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(500 * i));
      ASSERT_TRUE(lock.lock(t));
      m.compute(t, 30'000);
      lock.unlock(t);
    });
  }
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.blocks, 0u);
  EXPECT_GT(s.spin_probes, 0u);
}

TEST(WaitingPolicy, CombinedSpinsThenSleeps) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs,
                              LockAttributes::combined(5, kForever)));
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 500'000);  // long: waiter exhausts its 5 probes and sleeps
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_GT(s.spin_probes, 0u);
  EXPECT_GE(s.blocks, 1u);
}

TEST(WaitingPolicy, ConditionalLockTimesOut) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  bool got = true;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 500'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    got = lock.lock_for(t, 50'000);  // expires well before the release
  });
  m.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(lock.monitor().snapshot().timeouts, 1u);
}

TEST(WaitingPolicy, ConditionalLockSucceedsWithinTimeout) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  bool got = false;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 20'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    got = lock.lock_for(t, 10'000'000);
    if (got) lock.unlock(t);
  });
  m.run();
  EXPECT_TRUE(got);
}

TEST(WaitingPolicy, TimeoutAttributeMakesPlainLockConditional) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs,
                              LockAttributes::conditional(30'000)));
  bool got = true;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 500'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    got = lock.lock(t);  // attribute timeout applies
  });
  m.run();
  EXPECT_FALSE(got);
}

TEST(WaitingPolicy, CentralizedSleepersAreWokenOnRelease) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m,
            with_scheduler(SchedulerKind::kNone, LockAttributes::blocking()));
  std::uint64_t done = 0;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(400 * i));
      ASSERT_TRUE(lock.lock(t));
      m.compute(t, 25'000);
      ++done;
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(done, 3u);
  EXPECT_GE(lock.monitor().snapshot().blocks, 1u);
}

TEST(WaitingPolicy, PerThreadOverrideControlsWaiting) {
  // Thread 1 overridden to blocking while the lock-wide policy is spin:
  // only thread 1 should ever block.
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs, LockAttributes::spin()));
  ThreadId special = kInvalidThread;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 300'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    special = t.self();
    lock.set_thread_attributes(t, t.self(), LockAttributes::blocking());
    m.compute(t, 2000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.spawn(2, [&](Thread& t) {
    m.compute(t, 4000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_GE(lock.monitor().snapshot().blocks, 1u);
  // The spinner (thread 2) contributes probes; the sleeper contributes
  // blocks. Both completed, so the mixed policies coexisted.
  EXPECT_GT(lock.monitor().snapshot().spin_probes, 0u);
}

// ------------------------------------------------------------------------
// try_lock / recursion.
// ------------------------------------------------------------------------

TEST(TryLock, FailsWhenHeldSucceedsWhenFree) {
  Machine m(MachineParams::test_machine(2));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  bool a = false, b = true, c = false;
  m.spawn(0, [&](Thread& t) {
    a = lock.try_lock(t);
    b = lock.try_lock(t);
    lock.unlock(t);
    c = lock.try_lock(t);
    lock.unlock(t);
  });
  m.run();
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(RecursiveLock, OwnerReentersWithoutDeadlock) {
  Machine m(MachineParams::test_machine(2));
  auto opts = with_scheduler(SchedulerKind::kFcfs);
  opts.recursive = true;
  Lock lock(m, opts);
  int depth_seen = 0;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    ASSERT_TRUE(lock.lock(t));  // re-entry
    ASSERT_TRUE(lock.lock(t));
    depth_seen = 3;
    lock.unlock(t);
    lock.unlock(t);
    // Still held here: another thread must not be able to take it.
    EXPECT_FALSE(lock.try_lock(t) && false);  // placeholder, see below
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(depth_seen, 3);
}

TEST(RecursiveLock, FullyReleasedAfterBalancedUnlocks) {
  Machine m(MachineParams::test_machine(2));
  auto opts = with_scheduler(SchedulerKind::kFcfs);
  opts.recursive = true;
  Lock lock(m, opts);
  bool other_got = false;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 50'000);
    lock.unlock(t);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 200'000);  // after full release
    other_got = lock.try_lock(t);
    if (other_got) lock.unlock(t);
  });
  m.run();
  EXPECT_TRUE(other_got);
}

// ------------------------------------------------------------------------
// Advisory locks.
// ------------------------------------------------------------------------

TEST(AdvisoryLock, SleepAdviceMakesSpinnersBlock) {
  Machine m(MachineParams::test_machine(3));
  auto opts = with_scheduler(SchedulerKind::kFcfs, LockAttributes::spin());
  opts.advisory = true;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.advise(t, Advice::kSleep);  // long critical section ahead
    m.compute(t, 600'000);
    lock.advise(t, Advice::kSpin);   // nearly done
    m.compute(t, 10'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 3000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_GE(lock.monitor().snapshot().blocks, 1u)
      << "spin-configured waiter should have slept on the owner's advice";
}

TEST(AdvisoryLock, SpinAdviceKeepsBlockersSpinning) {
  Machine m(MachineParams::test_machine(3));
  auto opts = with_scheduler(SchedulerKind::kFcfs, LockAttributes::blocking());
  opts.advisory = true;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.advise(t, Advice::kSpin);  // short critical section
    m.compute(t, 30'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 3000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.blocks, 0u);
  EXPECT_GT(s.spin_probes, 0u);
}

// ------------------------------------------------------------------------
// Reconfiguration.
// ------------------------------------------------------------------------

TEST(Reconfigure, WaitingPolicyChangeAffectsSubsequentWaiters) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs, LockAttributes::spin()));
  m.spawn(0, [&](Thread& t) {
    lock.configure_waiting(t, LockAttributes::blocking());
    EXPECT_EQ(classify(lock.attributes()), WaitingKind::kPureSleep);
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 300'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 5000);
    ASSERT_TRUE(lock.lock(t));  // registered after the change: blocks
    lock.unlock(t);
  });
  m.run();
  EXPECT_GE(lock.monitor().snapshot().blocks, 1u);
  EXPECT_GE(lock.monitor().snapshot().reconfigurations, 1u);
}

TEST(Reconfigure, SchedulerChangeInstallsImmediatelyWhenIdle) {
  Machine m(MachineParams::test_machine(2));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  m.spawn(0, [&](Thread& t) {
    lock.configure_scheduler(t, SchedulerKind::kPriorityQueue);
    EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kPriorityQueue);
    EXPECT_FALSE(lock.reconfiguration_pending());
  });
  m.run();
  EXPECT_EQ(lock.monitor().snapshot().scheduler_changes, 1u);
}

TEST(Reconfigure, ConfigurationDelayServesPreRegisteredThreadsFirst) {
  // FCFS queue holds [low(1), high(2)] when the holder switches to a
  // priority scheduler. The pre-registered waiters must still be served in
  // FCFS order; a later waiter (highest priority of all, but also a later
  // arrival) is served from the new scheduler afterwards.
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  std::vector<int> order;
  bool pending_during = false, pending_after = true;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 100'000);  // waiters 1 (prio 1) and 2 (prio 9) queue
    lock.configure_scheduler(t, SchedulerKind::kPriorityQueue);
    pending_during = lock.reconfiguration_pending();
    m.compute(t, 100'000);  // waiter 3 (prio 20) registers with pending
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    t.set_priority(1);
    m.compute(t, 3000);
    ASSERT_TRUE(lock.lock(t));
    order.push_back(1);
    m.compute(t, 1000);
    lock.unlock(t);
  });
  m.spawn(2, [&](Thread& t) {
    t.set_priority(9);
    m.compute(t, 6000);
    ASSERT_TRUE(lock.lock(t));
    order.push_back(2);
    m.compute(t, 1000);
    lock.unlock(t);
  });
  m.spawn(3, [&](Thread& t) {
    t.set_priority(20);
    m.compute(t, 150'000);  // arrives after the configure
    ASSERT_TRUE(lock.lock(t));
    order.push_back(3);
    lock.unlock(t);
    pending_after = lock.reconfiguration_pending();
  });
  m.run();
  // Old FCFS order for pre-registered 1, 2 despite 2's higher priority.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(pending_during);
  EXPECT_FALSE(pending_after);
  EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kPriorityQueue);
}

TEST(Reconfigure, PossessIsExclusive) {
  Machine m(MachineParams::test_machine(2));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs));
  bool first = false, second = true, after_release = false;
  m.spawn(0, [&](Thread& t) {
    first = lock.try_possess(t, AttributeClass::kWaitingPolicy);
    second = lock.try_possess(t, AttributeClass::kWaitingPolicy);
    // A different attribute class is independently possessable.
    EXPECT_TRUE(lock.try_possess(t, AttributeClass::kScheduler));
    lock.release_possession(t, AttributeClass::kWaitingPolicy);
    after_release = lock.try_possess(t, AttributeClass::kWaitingPolicy);
    lock.release_possession(t, AttributeClass::kWaitingPolicy);
    lock.release_possession(t, AttributeClass::kScheduler);
  });
  m.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_TRUE(after_release);
}

TEST(Reconfigure, ExternalAgentReconfiguresWhileLockInUse) {
  // An external agent (a monitoring thread) possesses the waiting-policy
  // attribute and flips the lock from spin to blocking while worker threads
  // keep acquiring it.
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs, LockAttributes::spin()));
  std::uint64_t done = 0;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 10; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 20'000);
        ++done;
        lock.unlock(t);
        m.compute(t, 5000);
      }
    });
  }
  m.spawn(3, [&](Thread& t) {  // the external agent
    m.compute(t, 100'000);
    lock.possess(t, AttributeClass::kWaitingPolicy);
    lock.configure_waiting(t, LockAttributes::blocking());
    lock.release_possession(t, AttributeClass::kWaitingPolicy);
  });
  m.run();
  EXPECT_EQ(done, 30u);
  EXPECT_EQ(classify(lock.attributes()), WaitingKind::kPureSleep);
  EXPECT_GE(lock.monitor().snapshot().blocks, 1u);
}

// ------------------------------------------------------------------------
// Reader-writer configuration.
// ------------------------------------------------------------------------

Lock::Options rw_options(RwPreference pref = RwPreference::kFifo) {
  auto o = with_scheduler(SchedulerKind::kReaderWriter);
  o.rw_preference = pref;
  o.attributes = LockAttributes::spin();
  return o;
}

TEST(ReaderWriter, ReadersOverlap) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, rw_options());
  int readers_in = 0, max_readers = 0;
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      ASSERT_TRUE(lock.lock_shared(t));
      max_readers = std::max(max_readers, ++readers_in);
      m.compute(t, 30'000);
      --readers_in;
      lock.unlock_shared(t);
    });
  }
  m.run();
  EXPECT_GE(max_readers, 2);
}

TEST(ReaderWriter, WriterExcludesReaders) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, rw_options());
  int readers_in = 0;
  bool writer_in = false, overlap = false;
  for (int i = 0; i < 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 5; ++j) {
        ASSERT_TRUE(lock.lock_shared(t));
        ++readers_in;
        if (writer_in) overlap = true;
        m.compute(t, 5000);
        --readers_in;
        lock.unlock_shared(t);
        m.compute(t, 2000);
      }
    });
  }
  m.spawn(2, [&](Thread& t) {
    for (int j = 0; j < 5; ++j) {
      m.compute(t, 3000);
      ASSERT_TRUE(lock.lock(t));
      writer_in = true;
      if (readers_in > 0) overlap = true;
      m.compute(t, 5000);
      writer_in = false;
      lock.unlock(t);
    }
  });
  m.run();
  EXPECT_FALSE(overlap);
}

TEST(ReaderWriter, WriterBatchFollowsReaderBatchFifo) {
  // Holder writer; queue becomes [r, r, w, r]. FIFO preference: the two
  // leading readers are granted together, then the writer, then the tail
  // reader.
  Machine m(MachineParams::test_machine(6));
  Lock lock(m, rw_options(RwPreference::kFifo));
  std::vector<char> order;
  int readers_in = 0;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 400'000);
    lock.unlock(t);
  });
  auto reader = [&](int delay) {
    return [&, delay](Thread& t) {
      m.compute(t, static_cast<Nanos>(delay));
      ASSERT_TRUE(lock.lock_shared(t));
      ++readers_in;
      order.push_back('r');
      m.compute(t, 50'000);
      --readers_in;
      lock.unlock_shared(t);
    };
  };
  m.spawn(1, reader(3000));
  m.spawn(2, reader(6000));
  m.spawn(3, [&](Thread& t) {
    m.compute(t, 9000);
    ASSERT_TRUE(lock.lock(t));
    order.push_back('w');
    EXPECT_EQ(readers_in, 0);
    m.compute(t, 20'000);
    lock.unlock(t);
  });
  m.spawn(4, reader(12'000));
  m.run();
  EXPECT_EQ(order, (std::vector<char>{'r', 'r', 'w', 'r'}));
}

TEST(ReaderWriter, TryLockSharedRespectsWriter) {
  Machine m(MachineParams::test_machine(2));
  Lock lock(m, rw_options());
  bool shared_while_held = true, shared_after = false;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    shared_while_held = lock.try_lock_shared(t);
    lock.unlock(t);
    shared_after = lock.try_lock_shared(t);
    if (shared_after) lock.unlock_shared(t);
  });
  m.run();
  EXPECT_FALSE(shared_while_held);
  EXPECT_TRUE(shared_after);
}

// ------------------------------------------------------------------------
// Active locks.
// ------------------------------------------------------------------------

TEST(ActiveLock, ManagerExecutesReleaseModule) {
  Machine m(MachineParams::test_machine(5));
  auto opts = with_scheduler(SchedulerKind::kFcfs);
  opts.execution = Execution::kActive;
  Lock lock(m, opts);
  std::uint64_t done = 0;
  // Manager thread bound to the lock on a dedicated processor.
  const ThreadId manager =
      m.spawn(4, [&](Thread& t) { lock.serve(t); });
  std::vector<ThreadId> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 8; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 10'000);
        ++done;
        lock.unlock(t);  // posts to the manager
        m.compute(t, 3000);
      }
    }));
  }
  m.spawn(3, [&](Thread& t) {  // coordinator
    for (ThreadId w : workers) m.join(t, w);
    lock.stop_serving(t);
  });
  m.run();
  (void)manager;
  EXPECT_EQ(done, 24u);
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.acquisitions, 24u);
}

// ------------------------------------------------------------------------
// Monitor conservation properties.
// ------------------------------------------------------------------------

TEST(Monitor, CountsBalance) {
  Machine m(MachineParams::test_machine(4));
  Lock lock(m, with_scheduler(SchedulerKind::kFcfs,
                              LockAttributes::combined(3, 5000)));
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 10; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 5000);
        lock.unlock(t);
        m.compute(t, 2000);
      }
    });
  }
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.acquisitions, 40u);
  EXPECT_EQ(s.releases, 40u);
  EXPECT_LE(s.contended_acquisitions, s.acquisitions);
  EXPECT_EQ(s.handoffs, s.contended_acquisitions)
      << "every contended acquisition under a scheduler ends in a handoff";
  EXPECT_GT(s.mean_hold_ns(), 0.0);
  if (s.contended_acquisitions > 0) {
    EXPECT_GT(s.mean_wait_ns(), 0.0);
    EXPECT_GE(s.max_wait_ns, static_cast<Nanos>(s.mean_wait_ns()));
  }
}

TEST(Monitor, DisabledMonitorCountsNothing) {
  Machine m(MachineParams::test_machine(2));
  auto opts = with_scheduler(SchedulerKind::kFcfs);
  opts.monitor_enabled = false;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(lock.monitor().snapshot().acquisitions, 0u);
}

TEST(Monitor, HistogramBucketsAreLog2) {
  EXPECT_EQ(LockMonitor::bucket_of(0), 0u);
  EXPECT_EQ(LockMonitor::bucket_of(1), 0u);
  EXPECT_EQ(LockMonitor::bucket_of(2), 1u);
  EXPECT_EQ(LockMonitor::bucket_of(1023), 9u);
  EXPECT_EQ(LockMonitor::bucket_of(1024), 10u);
  EXPECT_EQ(LockMonitor::bucket_of(~0ULL), LockStats::kBuckets - 1);
}

// ------------------------------------------------------------------------
// Placement / traffic properties (centralized vs. distributed).
// ------------------------------------------------------------------------

TEST(Placement, DistributedWaitingGeneratesLessRemoteTraffic) {
  auto remote_refs = [](WaitPlacement wp, SchedulerKind sk) {
    Machine m(MachineParams::test_machine(8));
    auto opts = with_scheduler(sk);
    opts.wait_placement = wp;
    Lock lock(m, opts);
    for (int i = 0; i < 8; ++i) {
      m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
        m.compute(t, static_cast<Nanos>(100 * i));
        EXPECT_TRUE(lock.lock(t));
        m.compute(t, 20'000);
        lock.unlock(t);
      });
    }
    m.run();
    return m.stats().remote_references();
  };
  const auto distributed =
      remote_refs(WaitPlacement::kWaiterLocal, SchedulerKind::kFcfs);
  const auto centralized =
      remote_refs(WaitPlacement::kLockHome, SchedulerKind::kNone);
  EXPECT_LT(distributed * 2, centralized)
      << "queued waiters spinning on node-local flags must produce far "
         "fewer remote references than centralized spinning";
}

}  // namespace
}  // namespace relock
