// Multithreaded stress of the contended slow path on NativePlatform: real
// threads hammer lock/unlock while reconfiguration threads flip the
// scheduler module and waiting policy underneath them. Exercises the
// lock-free arrival stack (push vs. drain vs. lost-release recheck), the
// orphan queue (kNone reconfiguration races), per-thread attribute
// overrides, and conditional acquisition timeouts - the oracle throughout
// is mutual exclusion plus ops conservation.
//
// Durations are wall-clock-bounded (RELOCK_STRESS_MS, default 1000 per
// scenario) so the suite stays inside the ctest timeout on one core and
// under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"
#include "stress_seed.hpp"

namespace relock {
namespace {

using native::NativePlatform;
using testing::SplitMix64;
using testing::stress_seed;
using Lock = ConfigurableLock<NativePlatform>;

Nanos stress_window_ns() {
  if (const char* env = std::getenv("RELOCK_STRESS_MS")) {
    return static_cast<Nanos>(std::strtoull(env, nullptr, 10)) * 1'000'000;
  }
  return 1'000'000'000;  // 1 s per scenario
}

struct Oracle {
  std::atomic<std::uint32_t> in_cs{0};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> violations{0};
  std::uint64_t shared_counter = 0;  // guarded by the lock under test

  void enter_cs() {
    if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    ++shared_counter;
    in_cs.fetch_sub(1, std::memory_order_acq_rel);
    ops.fetch_add(1, std::memory_order_relaxed);
  }
};

// Workers lock/unlock as fast as possible; a reconfigurator cycles the
// scheduler module (including kNone, which routes racing arrivals through
// the orphan queue) and the waiting policy.
TEST(ContentionStress, ReconfigurationUnderLoad) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  Oracle oracle;
  std::atomic<bool> stop{false};

  const unsigned workers = 6;
  std::vector<std::thread> threads;
  threads.reserve(workers + 1);
  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      native::Context ctx(dom);
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock(ctx);
        oracle.enter_cs();
        lock.unlock(ctx);
      }
    });
  }
  threads.emplace_back([&] {
    native::Context ctx(dom);
    static constexpr SchedulerKind kKinds[] = {
        SchedulerKind::kFcfs, SchedulerKind::kNone,
        SchedulerKind::kPriorityQueue, SchedulerKind::kHandoff,
        SchedulerKind::kNone};
    static const LockAttributes kPolicies[] = {
        LockAttributes::spin(), LockAttributes::combined(100),
        LockAttributes::blocking()};
    SplitMix64 rng(stress_seed());
    const Nanos deadline = monotonic_now() + stress_window_ns();
    while (monotonic_now() < deadline) {
      lock.configure_scheduler(ctx, kKinds[rng.below(std::size(kKinds))]);
      lock.configure_waiting(ctx, kPolicies[rng.below(std::size(kPolicies))]);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& th : threads) th.join();

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  const std::uint64_t counted = oracle.shared_counter;
  lock.unlock(main_ctx);

  EXPECT_EQ(oracle.violations.load(), 0u);
  EXPECT_EQ(counted, oracle.ops.load());
  EXPECT_GT(oracle.ops.load(), 0u);
  EXPECT_EQ(lock.waiter_count(), 0u);
}

// Per-thread attribute churn while those same threads acquire: exercises
// the lock-free flat-slot reads against seqlock writes.
TEST(ContentionStress, PerThreadAttributeChurn) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  Oracle oracle;
  std::atomic<bool> stop{false};

  const unsigned workers = 4;
  std::vector<std::thread> threads;
  threads.reserve(workers + 1);
  std::atomic<ThreadId> worker_ids[workers];
  for (auto& id : worker_ids) id.store(kInvalidThread);

  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      native::Context ctx(dom);
      worker_ids[t].store(ctx.self());
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock(ctx);
        oracle.enter_cs();
        lock.unlock(ctx);
      }
    });
  }
  threads.emplace_back([&] {
    native::Context ctx(dom);
    SplitMix64 rng(stress_seed() ^ 0x5eedu);
    const Nanos deadline = monotonic_now() + stress_window_ns();
    while (monotonic_now() < deadline) {
      const ThreadId victim =
          worker_ids[rng.below(workers)].load(std::memory_order_relaxed);
      if (victim != kInvalidThread) {
        if (rng.below(2) == 0) {
          lock.set_thread_attributes(
              ctx, victim, LockAttributes::combined(50));
        } else {
          lock.clear_thread_attributes(ctx, victim);
        }
      }
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& th : threads) th.join();

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  const std::uint64_t counted = oracle.shared_counter;
  lock.unlock(main_ctx);

  EXPECT_EQ(oracle.violations.load(), 0u);
  EXPECT_EQ(counted, oracle.ops.load());
  EXPECT_GT(oracle.ops.load(), 0u);
}

// Conditional acquisitions racing grants: every lock_for either times out
// or enters the critical section; timed-out waiters must be withdrawn
// cleanly (no dangling arrival-stack or queue entries once threads exit).
TEST(ContentionStress, TimeoutsRaceGrants) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  Oracle oracle;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> timeouts{0};

  const unsigned workers = 6;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      native::Context ctx(dom);
      SplitMix64 rng(stress_seed() ^ (t * 0x9E3779B97F4A7C15ull));
      while (!stop.load(std::memory_order_relaxed)) {
        // Mix unconditional holders with short conditional waiters whose
        // deadlines (5-40 us) are jittered so timeouts land at every phase
        // of the grant chain.
        if (t % 2 == 0) {
          lock.lock(ctx);
          oracle.enter_cs();
          lock.unlock(ctx);
        } else if (lock.lock_for(ctx, 5'000 + rng.below(35'000))) {
          oracle.enter_cs();
          lock.unlock(ctx);
        } else {
          timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(stress_window_ns()));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  const std::uint64_t counted = oracle.shared_counter;
  lock.unlock(main_ctx);

  EXPECT_EQ(oracle.violations.load(), 0u);
  EXPECT_EQ(counted, oracle.ops.load());
  EXPECT_EQ(lock.waiter_count(), 0u);
}

}  // namespace
}  // namespace relock
