// TraceRing unit tests: push/consume ordering, wrap-around reuse, the
// drop-newest overflow policy with an EXACT dropped counter, and an SPSC
// stress pass with a live producer and consumer. Also covers the Registry
// plumbing that sits just above the ring (attach, unattributed drops,
// clear) and the TraceCollector's globally ordered merge - none of which
// need RELOCK_TRACE: the drain side compiles unconditionally.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "relock/trace/chrome_export.hpp"
#include "relock/trace/ring.hpp"
#include "relock/trace/trace.hpp"

namespace {

using namespace relock;
using trace::TraceRecord;
using trace::TraceRing;

TraceRecord rec(std::uint64_t ts, std::uint32_t arg = 0) {
  TraceRecord r;
  r.ts = ts;
  r.arg = arg;
  r.lock = 1;
  r.kind = static_cast<std::uint8_t>(LockEvent::kGranted);
  r.flags = 0;
  return r;
}

std::vector<std::uint64_t> drain(TraceRing& ring) {
  std::vector<std::uint64_t> out;
  ring.consume([&](const TraceRecord& r) { out.push_back(r.ts); });
  return out;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(4).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8192).capacity(), 8192u);
}

TEST(TraceRing, PushConsumePreservesOrder) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(rec(i)));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(drain(ring), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, WrapAroundReusesSlots) {
  TraceRing ring(4);
  // Fill, half-drain, refill: the head wraps past the buffer end while the
  // tail trails mid-buffer.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(rec(i)));
  std::vector<std::uint64_t> got;
  std::size_t n = 0;
  ring.consume([&](const TraceRecord& r) {
    if (n++ < 2) got.push_back(r.ts);
  });
  // consume drains everything it sees; re-push a fresh window instead.
  for (std::uint64_t i = 4; i < 10; ++i) {
    EXPECT_EQ(ring.push(rec(i)), i < 8) << i;
  }
  EXPECT_EQ(drain(ring), (std::vector<std::uint64_t>{4, 5, 6, 7}));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(TraceRing, DropNewestKeepsPrefixAndCountsExactly) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(rec(i));
  // The burst's PREFIX survives (drop-newest), and the count is exact.
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(drain(ring), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // The ring is usable again after a drain; the counter keeps accumulating
  // until reset_dropped.
  for (std::uint64_t i = 10; i < 16; ++i) ring.push(rec(i));
  EXPECT_EQ(ring.dropped(), 8u);
  ring.reset_dropped();
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(drain(ring), (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

// Bookkeeping identity under concurrency: pushed == consumed + dropped,
// consumed timestamps strictly increase (per-producer order survives), and
// the dropped counter is exact even while the consumer races the producer.
TEST(TraceRing, SpscStressAccountingIsExact) {
  TraceRing ring(64);
  constexpr std::uint64_t kPushes = 200'000;
  std::vector<std::uint64_t> consumed;
  consumed.reserve(kPushes);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i) (void)ring.push(rec(i));
  });
  std::uint64_t last = 0;
  bool ordered = true;
  while (true) {
    const std::size_t n = ring.consume([&](const TraceRecord& r) {
      if (!consumed.empty() && r.ts <= last) ordered = false;
      last = r.ts;
      consumed.push_back(r.ts);
    });
    if (n == 0 && !producer.joinable()) break;
    if (n == 0 && consumed.size() + ring.dropped() >= kPushes &&
        ring.size() == 0) {
      // Producer may still be finishing its last counter update; join.
      break;
    }
  }
  producer.join();
  (void)ring.consume([&](const TraceRecord& r) {
    if (!consumed.empty() && r.ts <= last) ordered = false;
    last = r.ts;
    consumed.push_back(r.ts);
  });
  EXPECT_TRUE(ordered);
  EXPECT_EQ(consumed.size() + ring.dropped(), kPushes);
}

// ---------------------------------------------------------------- Registry

TEST(TraceRegistry, RegisterLockIsNonZeroAndDistinct) {
  auto& reg = trace::Registry::instance();
  const std::uint16_t a = reg.register_lock();
  const std::uint16_t b = reg.register_lock();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceRegistry, EmitAttachesAndRecordsInGlobalOrder) {
  auto& reg = trace::Registry::instance();
  reg.set_enabled(false);
  reg.clear();
  reg.emit(0, 1, LockEvent::kGranted, 7);  // disabled: dropped silently
  reg.set_enabled(true);
  reg.emit(0, 1, LockEvent::kGranted, 1);
  reg.emit(1, 1, LockEvent::kRegistered, 2);
  reg.emit(0, 1, LockEvent::kReleaseFree, 3);
  reg.set_enabled(false);

  trace::TraceCollector collector;
  const std::vector<trace::Event> events = collector.collect();
  ASSERT_EQ(events.size(), 3u);
  // The logical clock totally orders records across rings.
  EXPECT_LT(events[0].ts, events[1].ts);
  EXPECT_LT(events[1].ts, events[2].ts);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_EQ(events[1].tid, 1u);
  EXPECT_EQ(events[1].kind, LockEvent::kRegistered);
  EXPECT_EQ(events[2].kind, LockEvent::kReleaseFree);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceRegistry, OutOfRangeThreadIdCountsUnattributed) {
  auto& reg = trace::Registry::instance();
  reg.set_enabled(false);
  reg.clear();
  reg.set_enabled(true);
  reg.emit(trace::Registry::kMaxThreads, 1, LockEvent::kGranted, 0);
  reg.emit(trace::Registry::kMaxThreads + 7, 1, LockEvent::kGranted, 0);
  reg.set_enabled(false);
  EXPECT_EQ(reg.unattributed_dropped(), 2u);
  trace::TraceCollector collector;
  EXPECT_TRUE(collector.collect().empty());
  EXPECT_EQ(collector.dropped(), 2u);
  reg.clear();
  EXPECT_EQ(reg.unattributed_dropped(), 0u);
}

// ------------------------------------------------------------ chrome export

TEST(ChromeExport, BalancesHoldsAndPairsGrantFlows) {
  using trace::Event;
  // Handcrafted two-thread capture: t0 takes the lock fast, releases with a
  // direct grant to t1, which acquires slow; t1's release closes its span.
  std::vector<Event> events{
      {0, 0, 1, LockEvent::kAcquireFast, 0},
      {1, 0, 1, LockEvent::kGranted, 1},      // flow start, grantee tid 1
      {2, 0, 1, LockEvent::kRelease, 0},
      {3, 1, 1, LockEvent::kAcquireSlow, 1},  // flow finish lands here
      {4, 1, 1, LockEvent::kRelease, 1},
  };
  const std::string json = trace::chrome_trace_json(events);

  const auto count = [&](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 2u);
  EXPECT_EQ(count("\"ph\":\"E\""), 2u);
  EXPECT_EQ(count("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count("\"ph\":\"f\""), 1u);
  EXPECT_EQ(count("\"ph\":\"M\""), 3u);  // process + two thread tracks
  // Flow finish references the flow start's id (the grant's timestamp).
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":1"),
            std::string::npos);
  // Valid object form with the events array closed.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(ChromeExport, ClosesHoldsLeftOpenAtCaptureEnd) {
  using trace::Event;
  std::vector<Event> events{
      {0, 0, 1, LockEvent::kAcquireFast, 0},
  };
  const std::string json = trace::chrome_trace_json(events);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(ChromeExport, EmptyCaptureIsStillAValidTrace) {
  const std::string json = trace::chrome_trace_json({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

}  // namespace
