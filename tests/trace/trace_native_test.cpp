// End-to-end relock-trace on the native platform (this binary is compiled
// with RELOCK_TRACE=1): real threads contend a lock while the registry
// records, then the capture is checked for semantic sanity - per-thread
// acquisition/release alternation, grant events naming real grantees, the
// runtime on/off gate, and a loadable Chrome JSON export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/monitor/reporter.hpp"
#include "relock/platform/native.hpp"
#include "relock/trace/chrome_export.hpp"
#include "relock/trace/trace.hpp"

#ifndef RELOCK_TRACE
#error "trace_native_test must be compiled with RELOCK_TRACE=1"
#endif

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;

/// Runs `threads` contending threads for `iters` lock cycles each with
/// recording on, and returns the merged capture.
std::vector<trace::Event> capture(std::uint32_t threads, int iters,
                                  SchedulerKind kind) {
  auto& reg = trace::Registry::instance();
  reg.set_enabled(false);
  reg.clear();
  reg.set_ring_capacity(1u << 16);
  reg.preattach(threads);

  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = kind;
  opts.attributes = LockAttributes::combined(50);
  Lock lock(domain, opts);

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::uint64_t counter = 0;
  std::vector<std::thread> team;
  team.reserve(threads);
  reg.set_enabled(true);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&] {
      native::Context ctx(domain);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int j = 0; j < iters; ++j) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  while (ready.load() != threads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  reg.set_enabled(false);
  EXPECT_EQ(counter, std::uint64_t{threads} * static_cast<std::uint32_t>(iters));

  trace::TraceCollector collector;
  std::vector<trace::Event> events = collector.collect();
  // The rings are sized for the full run: nothing may have been clipped,
  // or the per-thread stream invariants below would be vacuously broken.
  EXPECT_EQ(collector.dropped(), 0u);
  return events;
}

TEST(TraceNative, CapturesBalancedAcquireReleaseStreams) {
  const std::vector<trace::Event> events =
      capture(/*threads=*/4, /*iters=*/500, SchedulerKind::kFcfs);
  ASSERT_FALSE(events.empty());

  // Globally unique, strictly increasing timestamps after the merge sort.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].ts, events[i].ts);
  }

  std::map<ThreadId, std::int64_t> held;  // per-thread exclusive depth
  std::uint64_t acquires = 0, releases = 0, grants = 0;
  for (const trace::Event& e : events) {
    EXPECT_LT(e.tid, 4u);
    switch (e.kind) {
      case LockEvent::kAcquireFast:
      case LockEvent::kAcquireSlow:
        // No thread acquires while it already holds (non-recursive lock).
        EXPECT_EQ(held[e.tid], 0) << "tid " << e.tid;
        ++held[e.tid];
        ++acquires;
        break;
      case LockEvent::kRelease:
        EXPECT_EQ(held[e.tid], 1) << "tid " << e.tid;
        --held[e.tid];
        ++releases;
        break;
      case LockEvent::kGranted:
        EXPECT_LT(e.arg, 4u) << "grantee out of range";
        ++grants;
        break;
      default:
        break;
    }
  }
  // Every traced cycle closed (the teams join before recording stops).
  EXPECT_EQ(acquires, releases);
  EXPECT_EQ(acquires, 4u * 500u);
  for (const auto& [tid, depth] : held) EXPECT_EQ(depth, 0) << tid;
  // Contention is machine-dependent, but a kFcfs lock with four threads on
  // any host grants at least once... unless the OS serializes the threads
  // perfectly. Only require consistency, not a minimum.
  (void)grants;
}

TEST(TraceNative, RuntimeGateStopsRecording) {
  auto& reg = trace::Registry::instance();
  reg.set_enabled(false);
  reg.clear();

  native::Domain domain;
  Lock lock(domain, Lock::Options{});
  native::Context ctx(domain);
  lock.lock(ctx);
  lock.unlock(ctx);  // recording off: nothing lands

  trace::TraceCollector collector;
  EXPECT_TRUE(collector.collect().empty());

  reg.set_enabled(true);
  lock.lock(ctx);
  lock.unlock(ctx);
  reg.set_enabled(false);
  const std::vector<trace::Event> events = collector.collect();
  // One uncontended cycle: at least the fast acquire and the release.
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, LockEvent::kAcquireFast);
  EXPECT_EQ(events.front().tid, ctx.self());
}

TEST(TraceNative, WriteChromeTraceExportsLoadableJson) {
  const std::vector<trace::Event> events =
      capture(/*threads=*/2, /*iters=*/200, SchedulerKind::kHandoff);
  const std::string json = trace::chrome_trace_json(events);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Hold spans balance within the rendered string.
  std::size_t b = 0, e = 0;
  for (std::size_t pos = json.find("\"ph\":\"B\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"B\"", pos + 1)) {
    ++b;
  }
  for (std::size_t pos = json.find("\"ph\":\"E\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"E\"", pos + 1)) {
    ++e;
  }
  EXPECT_EQ(b, e);
  EXPECT_GT(b, 0u);
}

}  // namespace
