// Table 1 of the paper: parameter values -> resulting lock kind.
// Parameterized property sweep over the attribute space.
#include <gtest/gtest.h>

#include <tuple>

#include "relock/core/attributes.hpp"

namespace relock {
namespace {

TEST(Attributes, NamedConfigurationsMatchTable1) {
  // | spin-time | delay-time | sleep-time | timeout | resulting lock |
  EXPECT_EQ(classify(LockAttributes::spin()), WaitingKind::kPureSpin);
  EXPECT_EQ(classify(LockAttributes::backoff_spin()),
            WaitingKind::kBackoffSpin);
  EXPECT_EQ(classify(LockAttributes::blocking()), WaitingKind::kPureSleep);
  EXPECT_EQ(classify(LockAttributes::conditional(1000)),
            WaitingKind::kConditional);
  EXPECT_EQ(classify(LockAttributes::combined(10)), WaitingKind::kMixed);
}

TEST(Attributes, DefaultIsPureSpin) {
  EXPECT_EQ(classify(LockAttributes{}), WaitingKind::kPureSpin);
}

TEST(Attributes, ZeroEverythingIsDegenerate) {
  EXPECT_EQ(classify(LockAttributes{0, 0, 0, 0}), WaitingKind::kDegenerate);
}

TEST(Attributes, ToStringCoversAllKinds) {
  for (auto k : {WaitingKind::kPureSpin, WaitingKind::kBackoffSpin,
                 WaitingKind::kPureSleep, WaitingKind::kConditional,
                 WaitingKind::kMixed, WaitingKind::kDegenerate}) {
    EXPECT_STRNE(to_string(k), "?");
  }
  for (auto s : {SchedulerKind::kNone, SchedulerKind::kFcfs,
                 SchedulerKind::kPriorityQueue,
                 SchedulerKind::kPriorityThreshold, SchedulerKind::kHandoff,
                 SchedulerKind::kReaderWriter}) {
    EXPECT_STRNE(to_string(s), "?");
  }
}

// Property sweep: every combination of {zero, some, infinite} spin,
// {zero, some} delay, {zero, some, forever} sleep, {zero, some} timeout
// must classify per Table 1's rules.
using AttrCase = std::tuple<std::uint32_t, Nanos, Nanos, Nanos>;

class AttributeSweep : public ::testing::TestWithParam<AttrCase> {};

TEST_P(AttributeSweep, ClassificationFollowsTable1Rules) {
  const auto [spin, delay, sleep, timeout] = GetParam();
  const LockAttributes a{spin, delay, sleep, timeout};
  const WaitingKind k = classify(a);

  if (timeout > 0) {
    // Row 4: (x, x, x, n) -> conditional, regardless of the rest.
    EXPECT_EQ(k, WaitingKind::kConditional);
    return;
  }
  if (spin > 0 && sleep > 0) {
    EXPECT_EQ(k, WaitingKind::kMixed);  // row 5: (n, n, n, x)
  } else if (spin > 0 && delay > 0) {
    EXPECT_EQ(k, WaitingKind::kBackoffSpin);  // row 2: (n, n, 0, 0)
  } else if (spin > 0) {
    EXPECT_EQ(k, WaitingKind::kPureSpin);  // row 1: (n, 0, 0, 0)
  } else if (sleep > 0) {
    EXPECT_EQ(k, WaitingKind::kPureSleep);  // row 3: (0, 0, n, 0)
  } else {
    EXPECT_EQ(k, WaitingKind::kDegenerate);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AttributeSweep,
    ::testing::Combine(
        ::testing::Values<std::uint32_t>(0, 1, 10, kInfiniteSpins),
        ::testing::Values<Nanos>(0, 1000),
        ::testing::Values<Nanos>(0, 1000, kForever),
        ::testing::Values<Nanos>(0, 1'000'000)));

TEST(Attributes, EqualityComparesAllFields) {
  EXPECT_EQ(LockAttributes::spin(), LockAttributes::spin());
  EXPECT_NE(LockAttributes::spin(), LockAttributes::blocking());
  LockAttributes a = LockAttributes::combined(5);
  LockAttributes b = LockAttributes::combined(6);
  EXPECT_NE(a, b);
}

TEST(Attributes, ConditionalPreservesBasePolicy) {
  const auto c =
      LockAttributes::conditional(5000, LockAttributes::combined(3));
  EXPECT_EQ(c.spin_count, 3u);
  EXPECT_EQ(c.timeout_ns, 5000u);
  EXPECT_EQ(classify(c), WaitingKind::kConditional);
}

}  // namespace
}  // namespace relock
