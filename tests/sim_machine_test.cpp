// Unit tests for the NUMA machine simulator: coroutines, event ordering,
// timing model, scheduling, blocking, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "relock/platform/platform.hpp"
#include "relock/sim/coroutine.hpp"
#include "relock/sim/event_queue.hpp"
#include "relock/sim/machine.hpp"

namespace relock::sim {
namespace {

static_assert(Platform<SimPlatform>,
              "SimPlatform must satisfy the Platform concept");

// ---------------------------------------------------------- Coroutine ----

TEST(Coroutine, RunsToCompletion) {
  int x = 0;
  Coroutine c([&] { x = 42; });
  EXPECT_FALSE(c.finished());
  c.resume();
  EXPECT_TRUE(c.finished());
  EXPECT_EQ(x, 42);
}

TEST(Coroutine, SuspendResumeRoundTrips) {
  std::vector<int> order;
  Coroutine* self = nullptr;
  Coroutine c([&] {
    order.push_back(1);
    self->suspend();
    order.push_back(3);
    self->suspend();
    order.push_back(5);
  });
  self = &c;
  c.resume();
  order.push_back(2);
  c.resume();
  order.push_back(4);
  c.resume();
  EXPECT_TRUE(c.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Coroutine, NestedCoroutines) {
  int sum = 0;
  Coroutine inner([&] { sum += 10; });
  Coroutine outer([&] {
    sum += 1;
    inner.resume();
    sum += 100;
  });
  outer.resume();
  EXPECT_EQ(sum, 111);
  EXPECT_TRUE(inner.finished());
  EXPECT_TRUE(outer.finished());
}

TEST(Coroutine, PreservesCalleeSavedStateAcrossSwitches) {
  // Exercise locals that live in callee-saved registers across suspends.
  long acc = 0;
  Coroutine* self = nullptr;
  Coroutine c([&] {
    long a = 1, b = 2, d = 3, e = 4, f = 5, g = 6;
    self->suspend();
    a *= 7; b *= 7; d *= 7; e *= 7; f *= 7; g *= 7;
    self->suspend();
    acc = a + b + d + e + f + g;
  });
  self = &c;
  c.resume();
  c.resume();
  c.resume();
  EXPECT_EQ(acc, 7 * (1 + 2 + 3 + 4 + 5 + 6));
}

TEST(Coroutine, FloatingPointSurvivesSwitch) {
  double out = 0;
  Coroutine* self = nullptr;
  Coroutine c([&] {
    double v = 1.5;
    self->suspend();
    v *= 2.0;
    out = v;
  });
  self = &c;
  c.resume();
  c.resume();
  EXPECT_DOUBLE_EQ(out, 3.0);
}

// --------------------------------------------------------- EventQueue ----

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(30, EventKind::kResume, 3);
  q.push(10, EventKind::kResume, 1);
  q.push(20, EventKind::kResume, 2);
  EXPECT_EQ(q.pop().subject, 1u);
  EXPECT_EQ(q.pop().subject, 2u);
  EXPECT_EQ(q.pop().subject, 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) q.push(5, EventKind::kReady, i);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().subject, i);
}

// ------------------------------------------------------------ Machine ----

TEST(Machine, SingleThreadRunsAndFinishes) {
  Machine m(MachineParams::test_machine());
  bool ran = false;
  m.spawn(0, [&](Thread&) { ran = true; });
  m.run();
  EXPECT_TRUE(ran);
}

TEST(Machine, ComputeAdvancesVirtualTime) {
  Machine m(MachineParams::test_machine());
  Nanos observed = 0;
  m.spawn(0, [&](Thread& t) {
    const Nanos before = m.now();
    m.compute(t, 1000);
    observed = m.now() - before;
  });
  m.run();
  EXPECT_EQ(observed, 1000u);
}

TEST(Machine, LocalAccessCheaperThanRemote) {
  MachineParams p = MachineParams::test_machine(2);
  Machine m(p);
  Nanos local_cost = 0, remote_cost = 0;
  m.spawn(0, [&](Thread& t) {
    SimWord local(m, 0, Placement::on(0));
    SimWord remote(m, 0, Placement::on(1));
    Nanos t0 = m.now();
    m.mem_read(t, local.cell());
    local_cost = m.now() - t0;
    t0 = m.now();
    m.mem_read(t, remote.cell());
    remote_cost = m.now() - t0;
  });
  m.run();
  EXPECT_EQ(local_cost, p.read_local + p.op_overhead);
  EXPECT_EQ(remote_cost, p.read_remote + p.op_overhead);
}

TEST(Machine, RmwIsAtomicAcrossThreads) {
  Machine m(MachineParams::test_machine(4));
  SimWord counter(m, 0, Placement::on(0));
  constexpr int kThreads = 4, kIters = 100;
  for (int i = 0; i < kThreads; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < kIters; ++j) {
        m.mem_rmw(t, counter.cell(), [](std::uint64_t v) { return v + 1; });
      }
    });
  }
  m.run();
  EXPECT_EQ(counter.peek(), static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(Machine, ModuleContentionSerializesAccesses) {
  // Two threads hammering one module must take at least the sum of
  // occupancies; a third thread using another module is unaffected.
  MachineParams p = MachineParams::test_machine(3);
  p.occupancy_rmw = 100;
  p.rmw_local = 100;
  p.rmw_remote = 100;
  Machine m(p);
  SimWord hot(m, 0, Placement::on(0));
  Nanos t_finish[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      for (int j = 0; j < 10; ++j) {
        m.mem_rmw(t, hot.cell(), [](std::uint64_t v) { return v + 1; });
      }
      t_finish[i] = m.now();
    });
  }
  m.run();
  // 20 RMWs serialized on one module: >= 20 * occupancy.
  EXPECT_GE(std::max(t_finish[0], t_finish[1]), 20u * p.occupancy_rmw);
}

TEST(Machine, CasFailureDoesNotWrite) {
  Machine m(MachineParams::test_machine());
  SimWord w(m, 7, Placement::on(0));
  bool ok1 = true, ok2 = false;
  m.spawn(0, [&](Thread& t) {
    ok1 = m.mem_cas(t, w.cell(), 3, 99);
    ok2 = m.mem_cas(t, w.cell(), 7, 99);
  });
  m.run();
  EXPECT_FALSE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(w.peek(), 99u);
}

TEST(Machine, BlockUnblockRoundTrip) {
  Machine m(MachineParams::test_machine(2));
  std::vector<int> order;
  ThreadId sleeper = m.spawn(0, [&](Thread& t) {
    order.push_back(1);
    m.block(t);
    order.push_back(3);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 1000);  // let the sleeper block first
    order.push_back(2);
    m.unblock(t, sleeper);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Machine, UnblockBeforeBlockLeavesToken) {
  Machine m(MachineParams::test_machine(2));
  ThreadId a = kInvalidThread;
  bool done = false;
  a = m.spawn(0, [&](Thread& t) {
    m.compute(t, 5000);  // wake arrives during this
    m.block(t);          // must consume the token, not deadlock
    done = true;
  });
  m.spawn(1, [&](Thread& t) { m.unblock(t, a); });
  m.run();
  EXPECT_TRUE(done);
}

TEST(Machine, BlockForTimesOut) {
  Machine m(MachineParams::test_machine());
  bool woken = true;
  m.spawn(0, [&](Thread& t) { woken = m.block_for(t, 10'000); });
  m.run();
  EXPECT_FALSE(woken);
}

TEST(Machine, BlockForWokenByUnblock) {
  Machine m(MachineParams::test_machine(2));
  bool woken = false;
  ThreadId sleeper = m.spawn(0, [&](Thread& t) {
    woken = m.block_for(t, 1'000'000'000);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 1000);
    m.unblock(t, sleeper);
  });
  m.run();
  EXPECT_TRUE(woken);
}

TEST(Machine, StaleSleepExpiryIsIgnored) {
  // Thread sleeps, is woken, then blocks again; the first timer must not
  // wake the second block.
  Machine m(MachineParams::test_machine(2));
  int wakes = 0;
  ThreadId sleeper = m.spawn(0, [&](Thread& t) {
    if (m.block_for(t, 100'000)) ++wakes;  // woken by peer
    if (m.block_for(t, 500'000)) ++wakes;  // must time out, not stale-fire
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 1000);
    m.unblock(t, sleeper);
  });
  m.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Machine, JoinWaitsForTarget) {
  Machine m(MachineParams::test_machine(2));
  std::vector<int> order;
  ThreadId worker = m.spawn(0, [&](Thread& t) {
    m.compute(t, 100'000);
    order.push_back(1);
  });
  m.spawn(1, [&](Thread& t) {
    m.join(t, worker);
    order.push_back(2);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Machine, MultipleThreadsPerProcessorTimeSlice) {
  // Two compute-bound threads on one processor must interleave via quantum
  // preemption and both finish.
  MachineParams p = MachineParams::test_machine(1);
  p.quantum = 1000;
  Machine m(p);
  bool done[2] = {false, false};
  for (int i = 0; i < 2; ++i) {
    m.spawn(0, [&, i](Thread& t) {
      for (int j = 0; j < 20; ++j) m.compute(t, 500);
      done[i] = true;
    });
  }
  m.run();
  EXPECT_TRUE(done[0]);
  EXPECT_TRUE(done[1]);
  EXPECT_GT(m.stats().preemptions, 0u);
}

TEST(Machine, CooperativeModeNeverPreempts) {
  MachineParams p = MachineParams::test_machine(1);
  p.quantum = kForever;
  Machine m(p);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    m.spawn(0, [&, i](Thread& t) {
      m.compute(t, 10'000);
      order.push_back(i);
    });
  }
  m.run();
  EXPECT_EQ(m.stats().preemptions, 0u);
  // First spawned runs to completion before second starts.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Machine, YieldRotatesReadyQueue) {
  MachineParams p = MachineParams::test_machine(1);
  p.quantum = kForever;
  Machine m(p);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    m.spawn(0, [&, i](Thread& t) {
      order.push_back(i);
      m.yield(t);
      order.push_back(10 + i);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

TEST(Machine, DeadlockIsDetected) {
  Machine m(MachineParams::test_machine());
  m.spawn(0, [&](Thread& t) { m.block(t); });  // nobody will wake it
  EXPECT_THROW(m.run(), SimDeadlockError);
}

TEST(Machine, RunUntilStopsEarly) {
  Machine m(MachineParams::test_machine());
  m.spawn(0, [&](Thread& t) { m.compute(t, 1'000'000); });
  m.run(/*until=*/1000);
  EXPECT_LE(m.now(), 1000u);
  m.run();  // resume to completion
  EXPECT_GE(m.now(), 1'000'000u);
}

TEST(Machine, StatsCountAccessClasses) {
  Machine m(MachineParams::test_machine(2));
  m.spawn(0, [&](Thread& t) {
    SimWord local(m, 0, Placement::on(0));
    SimWord remote(m, 0, Placement::on(1));
    m.mem_read(t, local.cell());
    m.mem_write(t, remote.cell(), 1);
    m.mem_rmw(t, remote.cell(), [](std::uint64_t v) { return v; });
  });
  m.run();
  EXPECT_EQ(m.stats().reads_local, 1u);
  EXPECT_EQ(m.stats().writes_remote, 1u);
  EXPECT_EQ(m.stats().rmws_remote, 1u);
  EXPECT_EQ(m.stats().remote_references(), 2u);
}

TEST(Machine, CellsAreRecycled) {
  Machine m(MachineParams::test_machine());
  CellId first;
  {
    SimWord w(m, 1, Placement::on(0));
    first = w.cell();
  }
  SimWord w2(m, 2, Placement::on(0));
  EXPECT_EQ(w2.cell(), first);
  EXPECT_EQ(w2.peek(), 2u);
}

TEST(Machine, InterleavedPlacementRoundRobins) {
  Machine m(MachineParams::test_machine(3));
  SimWord a(m), b(m), c(m), d(m);
  EXPECT_EQ(m.cell_node(a.cell()), 0u);
  EXPECT_EQ(m.cell_node(b.cell()), 1u);
  EXPECT_EQ(m.cell_node(c.cell()), 2u);
  EXPECT_EQ(m.cell_node(d.cell()), 0u);
}

TEST(Machine, ExceptionInThreadPropagates) {
  Machine m(MachineParams::test_machine());
  m.spawn(0, [&](Thread&) { throw std::runtime_error("boom"); });
  EXPECT_THROW(m.run(), std::runtime_error);
}

// Determinism: identical programs produce identical timings and stats.
TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t* final_value) -> Nanos {
    Machine m(MachineParams::test_machine(4));
    auto counter = std::make_unique<SimWord>(m, 0, Placement::on(0));
    for (int i = 0; i < 4; ++i) {
      m.spawn(static_cast<ProcId>(i), [&m, &counter](Thread& t) {
        for (int j = 0; j < 50; ++j) {
          m.mem_rmw(t, counter->cell(),
                    [](std::uint64_t v) { return v + 1; });
          m.compute(t, 17);
        }
      });
    }
    m.run();
    *final_value = counter->peek();
    return m.now();
  };
  std::uint64_t v1 = 0, v2 = 0;
  const Nanos t1 = run_once(&v1);
  const Nanos t2 = run_once(&v2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(v1, v2);
}

}  // namespace
}  // namespace relock::sim
