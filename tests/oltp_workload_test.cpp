// Deterministic seeded tests for the 2PL transaction driver: acquisition
// discipline (ordering, upgrade rules, phase rules), wait-die / no-wait
// resolution of induced cycles (two transactions taking the same two keys
// in reversed order must never deadlock - the victim observes an abort,
// the survivor commits), and Zipfian generator distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "relock/platform/native.hpp"
#include "relock/table/lock_table.hpp"
#include "relock/table/twopl.hpp"
#include "relock/workload/zipf.hpp"
#include "stress_seed.hpp"

namespace relock::table {
namespace {

using native::NativePlatform;
using Table = LockTable<NativePlatform>;
using Txn = TxnLockSet<NativePlatform>;

Table::Options table_options(bool rw = false) {
  Table::Options o;
  o.capacity = 1024;
  o.partitions = 8;
  o.lock_options.scheduler =
      rw ? SchedulerKind::kReaderWriter : SchedulerKind::kFcfs;
  o.lock_options.attributes = LockAttributes::spin();
  return o;
}

TEST(TwoPhaseLocking, CommitReleasesEverythingAndIsReusable) {
  native::Domain dom(16);
  Table t(dom, table_options());
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});

  for (int round = 0; round < 3; ++round) {
    txn.begin(static_cast<std::uint64_t>(round) + 1);
    EXPECT_TRUE(txn.acquire(ctx, 1, AccessMode::kWrite));
    EXPECT_TRUE(txn.acquire(ctx, 5, AccessMode::kRead));
    EXPECT_TRUE(txn.acquire(ctx, 9, AccessMode::kWrite));
    EXPECT_EQ(txn.held_count(), 3u);
    txn.release_all(ctx);
    EXPECT_EQ(txn.held_count(), 0u);
  }
  // Everything came back: all three keys lock inline again.
  for (const Table::Key k : {1ull, 5ull, 9ull}) {
    EXPECT_TRUE(t.try_lock(ctx, k));
    t.unlock(ctx, k);
  }
}

TEST(TwoPhaseLocking, ReacquireIsIdempotentAcrossCoveredModes) {
  native::Domain dom(16);
  Table t(dom, table_options(/*rw=*/true));
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});

  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 2, AccessMode::kWrite));
  EXPECT_TRUE(txn.acquire(ctx, 2, AccessMode::kWrite));  // same mode
  EXPECT_TRUE(txn.acquire(ctx, 2, AccessMode::kRead));   // weaker mode
  EXPECT_TRUE(txn.acquire(ctx, 4, AccessMode::kRead));
  EXPECT_TRUE(txn.acquire(ctx, 4, AccessMode::kRead));
  EXPECT_EQ(txn.held_count(), 2u);  // one entry per key
  txn.release_all(ctx);
}

TEST(TwoPhaseLocking, OrderingDisciplineThrows) {
  native::Domain dom(16);
  Table t(dom, table_options());
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});

  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 10, AccessMode::kWrite));
  EXPECT_THROW((void)txn.acquire(ctx, 3, AccessMode::kWrite),
               LockUsageError);
  // The violation aborted nothing: the held set is intact and usable.
  EXPECT_EQ(txn.held_count(), 1u);
  EXPECT_TRUE(txn.acquire(ctx, 11, AccessMode::kWrite));
  txn.release_all(ctx);
}

TEST(TwoPhaseLocking, PhaseRulesThrow) {
  native::Domain dom(16);
  Table t(dom, table_options());
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});

  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 1, AccessMode::kWrite));
  txn.release_all(ctx);
  // Strict 2PL: the shrinking phase is terminal until the next begin().
  EXPECT_THROW((void)txn.acquire(ctx, 2, AccessMode::kWrite),
               LockUsageError);
  txn.begin(2);
  EXPECT_TRUE(txn.acquire(ctx, 2, AccessMode::kWrite));
  EXPECT_THROW(txn.begin(3), LockUsageError);  // begin with locks held
  txn.release_all(ctx);
}

TEST(TwoPhaseLocking, ReadToWriteUpgradeThrows) {
  native::Domain dom(16);
  Table t(dom, table_options(/*rw=*/true));
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});

  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 7, AccessMode::kRead));
  EXPECT_THROW((void)txn.acquire(ctx, 7, AccessMode::kWrite),
               LockUsageError);
  txn.release_all(ctx);
}

TEST(TwoPhaseLocking, WaitDieRequiresStamps) {
  native::Domain dom(16);
  Table t(dom, table_options());
  EXPECT_THROW(Txn(t, {.policy = DeadlockPolicy::kWaitDie}), LockUsageError);
}

// The canonical induced cycle, resolved by wait-die: T1 (older, ts=1)
// holds A and wants B; T2 (younger, ts=2) holds B and wants A. The
// timestamp rule is deterministic: T2 must die (T1's stamp on A is
// older), T1 must survive and commit. Barriers pin the interleaving.
TEST(TwoPhaseLocking, WaitDieResolvesReversedOrderCycle) {
  native::Domain dom(16);
  Table t(dom, table_options());
  WaitDieStamps stamps(64);
  const Table::Key A = 100, B = 200;
  std::atomic<bool> t1_has_a{false};
  std::atomic<bool> t2_has_b{false};
  std::atomic<int> t1_aborts{0}, t2_aborts{0};
  std::atomic<int> t1_commits{0}, t2_commits{0};

  std::thread th1([&] {
    native::Context ctx(dom);
    Txn txn(t, {.policy = DeadlockPolicy::kWaitDie,
                .wait_timeout = 100'000,  // 100 us slices while older waits
                .stamps = &stamps});
    txn.begin(1);
    ASSERT_TRUE(txn.acquire(ctx, A, AccessMode::kWrite));
    t1_has_a.store(true);
    while (!t2_has_b.load()) std::this_thread::yield();
    // Older transaction: waits (in bounded slices) until T2 dies and
    // releases B - never aborts.
    if (txn.acquire(ctx, B, AccessMode::kWrite)) {
      ++t1_commits;
    } else {
      ++t1_aborts;
    }
    txn.release_all(ctx);
  });

  std::thread th2([&] {
    native::Context ctx(dom);
    Txn txn(t, {.policy = DeadlockPolicy::kWaitDie,
                .wait_timeout = 100'000,
                .stamps = &stamps});
    txn.begin(2);
    ASSERT_TRUE(txn.acquire(ctx, B, AccessMode::kWrite));
    t2_has_b.store(true);
    while (!t1_has_a.load()) std::this_thread::yield();
    // Younger transaction against the older holder of A: must die.
    bool got = txn.acquire(ctx, A, AccessMode::kWrite);
    if (!got) {
      ++t2_aborts;
      txn.release_all(ctx);  // frees B, unblocking T1
      // Retry with the same timestamp until T1 commits and retracts.
      for (;;) {
        txn.begin(2);
        if (txn.acquire(ctx, A, AccessMode::kWrite)) break;
        ++t2_aborts;
        txn.release_all(ctx);
        std::this_thread::yield();
      }
    }
    ++t2_commits;
    txn.release_all(ctx);
  });

  th1.join();
  th2.join();
  EXPECT_EQ(t1_aborts.load(), 0) << "the older transaction must not die";
  EXPECT_EQ(t1_commits.load(), 1);
  EXPECT_GE(t2_aborts.load(), 1) << "the younger transaction must die";
  EXPECT_EQ(t2_commits.load(), 1) << "the victim retries and commits";
  // Quiescence: the cycle left nothing held.
  native::Context ctx(dom);
  for (const Table::Key k : {A, B}) {
    EXPECT_TRUE(t.try_lock(ctx, k));
    t.unlock(ctx, k);
  }
}

// Same reversed-order cycle under no-wait: nobody ever blocks, so the
// deadlock cannot form; with abort-and-retry both sides eventually commit.
TEST(TwoPhaseLocking, NoWaitResolvesReversedOrderCycle) {
  native::Domain dom(16);
  Table t(dom, table_options());
  const Table::Key A = 100, B = 200;
  std::atomic<int> aborts{0};
  std::atomic<int> commits{0};

  auto worker = [&](std::uint64_t ts, Table::Key first, Table::Key second) {
    native::Context ctx(dom);
    Txn txn(t, {.policy = DeadlockPolicy::kNoWait});
    for (;;) {
      txn.begin(ts);
      if (txn.acquire(ctx, first, AccessMode::kWrite) &&
          txn.acquire(ctx, second, AccessMode::kWrite)) {
        ++commits;
        txn.release_all(ctx);
        return;
      }
      ++aborts;  // try_lock failed somewhere: abort, release, retry
      txn.release_all(ctx);
      std::this_thread::yield();
    }
  };
  std::thread th1(worker, 1, A, B);
  std::thread th2(worker, 2, B, A);
  th1.join();
  th2.join();

  EXPECT_EQ(commits.load(), 2);
  native::Context ctx(dom);
  for (const Table::Key k : {A, B}) {
    EXPECT_TRUE(t.try_lock(ctx, k));
    t.unlock(ctx, k);
  }
}

// A seeded multi-thread 2PL mix: every transaction acquires its keys in
// ascending order under kOrdered (sorted sets, unbounded waits) - the
// classical deadlock-free discipline - with a per-key write-exclusivity
// oracle, as a soak of the driver + table stack.
TEST(TwoPhaseLocking, SeededOrderedWorkloadSoak) {
  native::Domain dom(32);
  Table t(dom, table_options());
  constexpr int kThreads = 4;
  constexpr int kTxns = 500;
  constexpr std::uint64_t kKeys = 32;
  std::atomic<int> owners[kKeys] = {};
  std::atomic<std::uint64_t> committed{0};

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    team.emplace_back([&, ti] {
      native::Context ctx(dom);
      Xoshiro256 rng(relock::testing::stress_seed() ^
                     (0xab54u + static_cast<unsigned>(ti)));
      Txn txn(t, {.policy = DeadlockPolicy::kOrdered});
      for (int i = 0; i < kTxns; ++i) {
        txn.begin(static_cast<std::uint64_t>(ti * kTxns + i) + 1);
        // 2-5 distinct keys, ascending.
        const std::uint64_t want = 2 + rng.next_below(4);
        std::uint64_t k = rng.next_below(8);
        std::uint64_t taken = 0;
        for (; taken < want && k < kKeys; ++taken, k += 1 + rng.next_below(8)) {
          ASSERT_TRUE(txn.acquire(ctx, k, AccessMode::kWrite));
          const int inside =
              owners[k].fetch_add(1, std::memory_order_acq_rel);
          EXPECT_EQ(inside, 0) << "write overlap on key " << k;
          owners[k].fetch_sub(1, std::memory_order_acq_rel);
        }
        committed.fetch_add(1, std::memory_order_relaxed);
        txn.release_all(ctx);
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(committed.load(), kThreads * kTxns);
  EXPECT_EQ(t.inflated_count(), 0u);
}

TEST(ZipfianSampler, ThetaZeroIsUniform) {
  Xoshiro256 rng(relock::testing::stress_seed() ^ 0x51f0u);
  workload::ZipfianSampler z(100, 0.0);
  constexpr int kSamples = 100'000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t r = z.sample(rng);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // Every bin within 3x of the uniform expectation (1000 +- noise).
  for (int c : counts) {
    EXPECT_GT(c, 1000 / 3);
    EXPECT_LT(c, 3000);
  }
}

TEST(ZipfianSampler, SkewConcentratesOnLowRanks) {
  Xoshiro256 rng(relock::testing::stress_seed() ^ 0x21f0u);
  workload::ZipfianSampler z(1000, 0.99);
  constexpr int kSamples = 100'000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.sample(rng)];
  // YCSB-grade skew: rank 0 draws a few percent of all samples, the top
  // 10 ranks dominate the median rank by an order of magnitude.
  EXPECT_GT(counts[0], kSamples / 50);
  int top10 = 0;
  for (std::size_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(top10, kSamples / 5);
  EXPECT_GT(counts[0], counts[500] * 10 + 1);
}

TEST(ZipfianSampler, ScrambledPreservesSkewMass) {
  Xoshiro256 rng(relock::testing::stress_seed() ^ 0x5c3au);
  workload::ZipfianSampler z(1000, 0.9);
  constexpr int kSamples = 100'000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.sample_scrambled(rng)];
  // The same mass concentrates on *some* 10 keys - just not 0..9.
  std::vector<int> sorted = counts;
  std::sort(sorted.rbegin(), sorted.rend());
  int top10 = 0;
  for (std::size_t r = 0; r < 10; ++r) top10 += sorted[r];
  EXPECT_GT(top10, kSamples / 6);
}

}  // namespace
}  // namespace relock::table
