// Additional ConfigurableLock scenarios on the simulator: active locks in
// both manager modes, timed advisory sleep, reader/writer preferences,
// timeout bookkeeping, handoff fallbacks, placement statistics, and
// whole-run determinism via the machine trace.
#include <gtest/gtest.h>

#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;

using Lock = ConfigurableLock<SimPlatform>;

Lock::Options base_options(SchedulerKind k,
                           LockAttributes a = LockAttributes::spin()) {
  Lock::Options o;
  o.scheduler = k;
  o.attributes = a;
  o.placement = Placement::on(0);
  o.monitor_enabled = true;
  return o;
}

// ----------------------------------------------------------- active ------

TEST(ActiveLockExtra, BlockingManagerMode) {
  // active_polling = false: the manager parks and unlock() must wake it.
  Machine m(MachineParams::test_machine(5));
  auto opts = base_options(SchedulerKind::kFcfs);
  opts.execution = Execution::kActive;
  opts.active_polling = false;
  Lock lock(m, opts);
  std::uint64_t done = 0;
  std::vector<ThreadId> workers;
  m.spawn(4, [&](Thread& t) { lock.serve(t); });
  for (int i = 0; i < 3; ++i) {
    workers.push_back(m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 6; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 5000);
        ++done;
        lock.unlock(t);
        m.compute(t, 2000);
      }
    }));
  }
  m.spawn(3, [&](Thread& t) {
    for (ThreadId w : workers) m.join(t, w);
    lock.stop_serving(t);
  });
  m.run();
  EXPECT_EQ(done, 18u);
}

TEST(ActiveLockExtra, HandoffHintsSurviveTheMailbox) {
  // unlock_to()'s hint must reach the manager through the mailbox encoding.
  Machine m(MachineParams::test_machine(6));
  auto opts = base_options(SchedulerKind::kHandoff);
  opts.execution = Execution::kActive;
  Lock lock(m, opts);
  std::vector<int> order;
  std::vector<ThreadId> tids(4, kInvalidThread);
  m.spawn(5, [&](Thread& t) { lock.serve(t); });
  ThreadId holder = m.spawn(0, [&](Thread& t) {
    tids[0] = t.self();
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 100'000);      // waiters 1..3 queue
    lock.unlock_to(t, tids[3]); // hint: thread 3 first
  });
  std::vector<ThreadId> all{holder};
  for (int i = 1; i <= 3; ++i) {
    all.push_back(m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      tids[static_cast<std::size_t>(i)] = t.self();
      m.compute(t, static_cast<Nanos>(2000 * i));
      ASSERT_TRUE(lock.lock(t));
      order.push_back(i);
      lock.unlock(t);  // no hint: FCFS fallback among the rest
    }));
  }
  m.spawn(4, [&](Thread& t) {
    for (ThreadId w : all) m.join(t, w);
    lock.stop_serving(t);
  });
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3) << "the manager must honor the hint";
}

TEST(ActiveLockExtra, FallsBackToPassiveWhenNotServing) {
  Machine m(MachineParams::test_machine(2));
  auto opts = base_options(SchedulerKind::kFcfs);
  opts.execution = Execution::kActive;  // but nobody calls serve()
  Lock lock(m, opts);
  bool done = false;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);  // inline release path
    ASSERT_TRUE(lock.try_lock(t));
    lock.unlock(t);
    done = true;
  });
  m.run();
  EXPECT_TRUE(done);
}

// --------------------------------------------------------- advisory ------

TEST(AdvisoryExtra, TimedSleepAdviceSleepsOnceThenSpins) {
  // The owner announces a 400us tenure; the waiter should block exactly
  // once (a single bounded sleep) and then spin through the final margin.
  MachineParams p = MachineParams::test_machine(3);
  Machine m(p);
  auto opts = base_options(SchedulerKind::kFcfs, LockAttributes::spin());
  opts.advisory = true;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.advise(t, Advice::kSleep, 400'000);
    m.compute(t, 400'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.blocks, 1u) << "one bounded sleep covering the tenure";
  EXPECT_GT(s.spin_probes, 0u) << "followed by spinning inside the margin";
}

TEST(AdvisoryExtra, ExpiredDeadlineFallsBackToSpinning) {
  // Advice whose deadline has already passed must not put waiters to sleep.
  Machine m(MachineParams::test_machine(3));
  auto opts = base_options(SchedulerKind::kFcfs, LockAttributes::spin());
  opts.advisory = true;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.advise(t, Advice::kSleep, 1);  // expires immediately
    m.compute(t, 100'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 5000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(lock.monitor().snapshot().blocks, 0u);
}

TEST(AdvisoryExtra, CurrentAdviceDecodesKind) {
  Machine m(MachineParams::test_machine(2));
  auto opts = base_options(SchedulerKind::kFcfs);
  opts.advisory = true;
  Lock lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    EXPECT_EQ(lock.current_advice(t), Advice::kNone);
    lock.advise(t, Advice::kSleep, 1'000'000);
    EXPECT_EQ(lock.current_advice(t), Advice::kSleep);
    lock.advise(t, Advice::kSpin);
    EXPECT_EQ(lock.current_advice(t), Advice::kSpin);
    lock.unlock(t);
  });
  m.run();
}

// ------------------------------------------------------ reader-writer ----

TEST(ReaderWriterExtra, ReaderPreferenceLetsReadersBarge) {
  Machine m(MachineParams::test_machine(5));
  auto opts = base_options(SchedulerKind::kReaderWriter);
  opts.rw_preference = RwPreference::kReaderPref;
  Lock lock(m, opts);
  std::vector<char> order;
  // Reader A holds; writer W queues; reader B arrives later and must be
  // able to join A (reader preference) before W runs.
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock_shared(t));
    order.push_back('a');
    m.compute(t, 100'000);
    lock.unlock_shared(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 5000);
    ASSERT_TRUE(lock.lock(t));
    order.push_back('w');
    lock.unlock(t);
  });
  m.spawn(2, [&](Thread& t) {
    m.compute(t, 20'000);
    ASSERT_TRUE(lock.lock_shared(t));  // barges in with reader A
    order.push_back('b');
    m.compute(t, 10'000);
    lock.unlock_shared(t);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'w'}));
}

TEST(ReaderWriterExtra, WriterPreferenceServesWriterFirst) {
  Machine m(MachineParams::test_machine(5));
  auto opts = base_options(SchedulerKind::kReaderWriter);
  opts.rw_preference = RwPreference::kWriterPref;
  Lock lock(m, opts);
  std::vector<char> order;
  // Writer holds; reader R1 queues, then writer W2, then reader R2.
  // Writer preference: W2 is served before both readers.
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 100'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 3000);
    ASSERT_TRUE(lock.lock_shared(t));
    order.push_back('r');
    lock.unlock_shared(t);
  });
  m.spawn(2, [&](Thread& t) {
    m.compute(t, 6000);
    ASSERT_TRUE(lock.lock(t));
    order.push_back('W');
    lock.unlock(t);
  });
  m.spawn(3, [&](Thread& t) {
    m.compute(t, 9000);
    ASSERT_TRUE(lock.lock_shared(t));
    order.push_back('r');
    lock.unlock_shared(t);
  });
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'W');
}

TEST(ReaderWriterExtra, SharedTimeoutExpires) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, base_options(SchedulerKind::kReaderWriter));
  bool got = true;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));  // writer holds throughout
    m.compute(t, 500'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 5000);
    got = lock.lock_shared_for(t, 50'000);
  });
  m.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(lock.monitor().snapshot().timeouts, 1u);
}

TEST(ReaderWriterExtra, SharedRecountAcrossGrantBatches) {
  // Two grant batches of readers in sequence; holders_ bookkeeping must
  // track batch sizes exactly (regression guard).
  Machine m(MachineParams::test_machine(6));
  Lock lock(m, base_options(SchedulerKind::kReaderWriter));
  int max_readers = 0, readers = 0;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 100'000);  // readers 1-2 and writer 3 and reader 4 queue
    lock.unlock(t);
  });
  auto reader = [&](int delay) {
    return [&, delay](Thread& t) {
      m.compute(t, static_cast<Nanos>(delay));
      ASSERT_TRUE(lock.lock_shared(t));
      max_readers = std::max(max_readers, ++readers);
      m.compute(t, 30'000);
      --readers;
      lock.unlock_shared(t);
    };
  };
  m.spawn(1, reader(3000));
  m.spawn(2, reader(6000));
  m.spawn(3, [&](Thread& t) {
    m.compute(t, 9000);
    ASSERT_TRUE(lock.lock(t));
    EXPECT_EQ(readers, 0);
    m.compute(t, 10'000);
    lock.unlock(t);
  });
  m.spawn(4, reader(12'000));
  m.run();
  EXPECT_EQ(max_readers, 2);
  EXPECT_EQ(readers, 0);
}

// ----------------------------------------------------------- timeouts ----

TEST(TimeoutExtra, TimedOutWaiterLeavesNoResidue) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, base_options(SchedulerKind::kFcfs));
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 400'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 2000);
    EXPECT_FALSE(lock.lock_for(t, 30'000));
    EXPECT_EQ(lock.waiter_count(), 0u) << "timed-out waiter must dequeue";
    // The same thread can acquire normally afterwards.
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
}

TEST(TimeoutExtra, GrantBeatsTimeoutRace) {
  // The grant lands exactly around the deadline; whoever wins, the lock
  // state stays consistent: either the waiter got it (and must release) or
  // it timed out (and the lock is free).
  for (const Nanos timeout : {140'000u, 150'000u, 160'000u, 170'000u}) {
    Machine m(MachineParams::test_machine(3));
    Lock lock(m, base_options(SchedulerKind::kFcfs));
    m.spawn(0, [&](Thread& t) {
      ASSERT_TRUE(lock.lock(t));
      m.compute(t, 150'000);
      lock.unlock(t);
    });
    bool got = false;
    m.spawn(1, [&, timeout](Thread& t) {
      m.compute(t, 2000);
      got = lock.lock_for(t, timeout);
      if (got) lock.unlock(t);
    });
    m.spawn(2, [&](Thread& t) {  // post-race probe
      m.compute(t, 800'000);
      ASSERT_TRUE(lock.try_lock(t)) << "lock must end up free";
      lock.unlock(t);
    });
    m.run();
    EXPECT_EQ(lock.waiter_count(), 0u);
  }
}

// ----------------------------------------------------------- handoff -----

TEST(HandoffExtra, HintForAbsentThreadFallsBackToFcfs) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, base_options(SchedulerKind::kHandoff));
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 100'000);
    lock.unlock_to(t, 999);  // no such waiter
  });
  for (int i = 1; i <= 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(2000 * i));
      ASSERT_TRUE(lock.lock(t));
      order.push_back(i);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(HandoffExtra, HintIgnoredWithoutScheduler) {
  Machine m(MachineParams::test_machine(2));
  Lock lock(m, base_options(SchedulerKind::kNone));
  bool done = false;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    lock.unlock_to(t, 42);  // centralized mode: hint is harmless
    ASSERT_TRUE(lock.try_lock(t));
    lock.unlock(t);
    done = true;
  });
  m.run();
  EXPECT_TRUE(done);
}

// ----------------------------------------------- per-thread attributes ---

TEST(PerThreadAttrs, ClearRestoresLockWidePolicy) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, base_options(SchedulerKind::kFcfs, LockAttributes::spin()));
  m.spawn(0, [&](Thread& t) {
    lock.set_thread_attributes(t, t.self(), LockAttributes::blocking());
    lock.clear_thread_attributes(t, t.self());
    // After clearing, this thread follows the lock-wide spin policy: wait
    // for a held lock without ever blocking.
    m.compute(t, 10'000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 80'000);
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(lock.monitor().snapshot().blocks, 0u);
}

// -------------------------------------------------- placement traffic ----

TEST(PlacementExtra, CentralizedWaitFlagsLiveOnLockNode) {
  // With WaitPlacement::kLockHome every waiter polls the lock's node;
  // remote traffic must far exceed the kWaiterLocal configuration even
  // under a queued scheduler.
  auto remote_refs = [](WaitPlacement wp) {
    Machine m(MachineParams::test_machine(6));
    auto opts = base_options(SchedulerKind::kFcfs);
    opts.wait_placement = wp;
    opts.monitor_enabled = false;
    Lock lock(m, opts);
    for (int i = 0; i < 6; ++i) {
      m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
        m.compute(t, static_cast<Nanos>(200 * i));
        EXPECT_TRUE(lock.lock(t));
        m.compute(t, 15'000);
        lock.unlock(t);
      });
    }
    m.run();
    return m.stats().remote_references();
  };
  EXPECT_LT(remote_refs(WaitPlacement::kWaiterLocal),
            remote_refs(WaitPlacement::kLockHome));
}

// ----------------------------------------------------- state (Fig 4) -----

TEST(LockStateExtra, TransitionsThroughFigure4States) {
  Machine m(MachineParams::test_machine(3));
  Lock lock(m, base_options(SchedulerKind::kPriorityThreshold));
  std::vector<LockState> seen;
  m.spawn(0, [&](Thread& t) {
    seen.push_back(lock.state(t));  // unlocked
    ASSERT_TRUE(lock.lock(t));
    seen.push_back(lock.state(t));  // locked
    m.compute(t, 100'000);          // the low-priority waiter queues
    lock.set_priority_threshold(t, 5);
    lock.unlock(t);                 // waiter ineligible: lock goes idle
    seen.push_back(lock.state(t));  // idle (free, but a thread waits)
    m.compute(t, 50'000);
    lock.set_priority_threshold(t, 0);  // waiter becomes eligible
  });
  m.spawn(1, [&](Thread& t) {
    t.set_priority(1);
    m.compute(t, 5000);
    ASSERT_TRUE(lock.lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(seen, (std::vector<LockState>{LockState::kUnlocked,
                                          LockState::kLocked,
                                          LockState::kIdle}));
}

// -------------------------------------------------------- determinism ----

TEST(DeterminismExtra, ComplexRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Machine m(MachineParams::test_machine(6));
    m.enable_trace();
    auto opts = Lock::Options{};
    opts.scheduler = SchedulerKind::kFcfs;
    opts.attributes = LockAttributes::combined(4, 20'000);
    opts.placement = Placement::on(0);
    Lock lock(m, opts);
    for (int i = 0; i < 6; ++i) {
      m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
        for (int j = 0; j < 12; ++j) {
          EXPECT_TRUE(lock.lock(t));
          m.compute(t, 3000 + static_cast<Nanos>(i) * 100);
          lock.unlock(t);
          m.compute(t, 1000);
        }
      });
    }
    m.run();
    return m.trace_digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace relock
