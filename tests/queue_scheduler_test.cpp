// SchedulerKind::kQueue - the distributed MCS-family scheduler on the
// native path. Covers the façade module directly (enqueue/select/remove
// semantics on the shared cell), contended FIFO handoff with spinning and
// blocking waiting policies, timeout self-removal of head/middle/tail
// nodes (lock_for and native::Mutex::try_lock_for), interaction with the
// fissile fast path, and reconfiguration to and from kQueue under load.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/core/scheduler.hpp"
#include "relock/native/mutex.hpp"
#include "relock/platform/native.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using native::NativePlatform;
using Lock = ConfigurableLock<NativePlatform>;

Lock::Options opts(SchedulerKind kind = SchedulerKind::kQueue,
                   LockAttributes attrs = LockAttributes::spin()) {
  Lock::Options o;
  o.scheduler = kind;
  o.attributes = attrs;
  return o;
}

template <typename F>
void await(F&& probe, bool want) {
  const Nanos deadline = monotonic_now() + 10'000'000'000;  // 10 s
  while (probe() != want) {
    ASSERT_LT(monotonic_now(), deadline) << "probe never reached state";
    std::this_thread::yield();
  }
}

// ------------------------------------------- façade module unit tests ----
// The DistributedQueueScheduler is exact (no in-flight link windows) when
// producers and the consumer are the same thread, which is how the
// simulator and the meta-guarded drains use it - so its single-threaded
// queue semantics can be pinned down directly.

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;
using SimRec = WaiterRecord<SimPlatform>;

class QueueFacadeUnit : public ::testing::Test {
 protected:
  QueueFacadeUnit() : machine_(MachineParams::test_machine(2)) {}

  SimRec& make(ThreadId tid, Priority prio = 0) {
    recs_.emplace_back(machine_, tid, prio, Placement::on(0),
                       /*shared=*/false, /*may_sleep=*/false);
    return recs_.back();
  }

  Machine machine_;
  std::deque<SimRec> recs_;  // deque: records are immovable
  DistributedQueueScheduler<SimPlatform> sched_;
};

TEST_F(QueueFacadeUnit, KindAndPolicy) {
  EXPECT_EQ(sched_.kind(), SchedulerKind::kQueue);
  EXPECT_EQ(sched_.successor_policy(), SuccessorPolicy::kStableHead);
  EXPECT_TRUE(sched_.empty());
  EXPECT_EQ(sched_.size(), 0u);
  EXPECT_EQ(sched_.pop_any(), nullptr);
}

TEST_F(QueueFacadeUnit, FifoSelectIgnoresPriorityAndHint) {
  SimRec& a = make(1, /*prio=*/0);
  SimRec& b = make(2, /*prio=*/9);
  SimRec& c = make(3, /*prio=*/5);
  sched_.enqueue(a);
  sched_.enqueue(b);
  sched_.enqueue(c);
  EXPECT_EQ(sched_.size(), 3u);
  EXPECT_EQ(sched_.peek_next(kInvalidThread), &a);
  GrantBatch<SimPlatform> batch;
  sched_.select(batch, /*hint=*/3);  // hints do not reorder a FIFO
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front(), &a);
  batch.clear();
  sched_.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front(), &b);
  EXPECT_EQ(sched_.pop_any(), &c);
  EXPECT_TRUE(sched_.empty());
}

TEST_F(QueueFacadeUnit, RemoveHeadMiddleTailAndReuse) {
  SimRec& a = make(1);
  SimRec& b = make(2);
  SimRec& c = make(3);
  SimRec& d = make(4);
  sched_.enqueue(a);
  sched_.enqueue(b);
  sched_.enqueue(c);
  sched_.enqueue(d);
  sched_.remove(b);  // middle
  sched_.remove(d);  // tail
  sched_.remove(a);  // head
  EXPECT_EQ(sched_.size(), 1u);
  EXPECT_EQ(sched_.pop_any(), &c);
  EXPECT_TRUE(sched_.empty());
  // Unlinked records are clean for re-enqueue (node reuse after timeout).
  sched_.enqueue(b);
  sched_.enqueue(a);
  EXPECT_EQ(sched_.pop_any(), &b);
  EXPECT_EQ(sched_.pop_any(), &a);
  EXPECT_TRUE(sched_.empty());
}

TEST_F(QueueFacadeUnit, EnqueueFrontRestoresHeadPosition) {
  SimRec& a = make(1);
  SimRec& b = make(2);
  sched_.enqueue(a);
  sched_.enqueue(b);
  SimRec* head = sched_.pop_any();
  ASSERT_EQ(head, &a);
  sched_.enqueue_front(*head);  // reclaim: oldest goes back in front
  EXPECT_EQ(sched_.pop_any(), &a);
  EXPECT_EQ(sched_.pop_any(), &b);
  // enqueue_front into an empty queue is the degenerate case.
  sched_.enqueue_front(a);
  EXPECT_EQ(sched_.peek_next(kInvalidThread), &a);
  EXPECT_EQ(sched_.pop_any(), &a);
  EXPECT_TRUE(sched_.empty());
}

// ------------------------------------------------ native lock behavior ---

TEST(QueueScheduler, UncontendedCyclesStayInFastMode) {
  // kQueue is fissile-eligible: uncontended cycles never touch the cell.
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  EXPECT_TRUE(lk.fast_path_eligible());
  for (int i = 0; i < 100; ++i) {
    lk.lock(ctx);
    EXPECT_TRUE(lk.in_fast_mode(ctx));
    lk.unlock(ctx);
  }
  EXPECT_TRUE(lk.try_lock(ctx));
  lk.unlock(ctx);
  EXPECT_TRUE(lk.lock_for(ctx, 1'000'000));
  lk.unlock(ctx);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

TEST(QueueScheduler, FirstQueuedArrivalDemotesFastMode) {
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::thread contender([&] {
    native::Context tctx(dom);
    lk.lock(tctx);
    lk.unlock(tctx);
  });
  // The queued arrival's mark demotes the lock to full mode (fissile bit 1
  // behaves identically to the centralized schedulers).
  await([&] { return lk.in_fast_mode(ctx); }, false);
  lk.unlock(ctx);
  contender.join();
  // Queue drained, releaser published free: fast mode restored.
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

void contended_cycles(Lock& lk, native::Domain& dom, unsigned threads,
                      int iters) {
  std::atomic<int> inside{0};
  std::atomic<int> total{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      native::Context ctx(dom);
      for (int i = 0; i < iters; ++i) {
        lk.lock(ctx);
        ASSERT_EQ(inside.fetch_add(1, std::memory_order_relaxed), 0);
        inside.fetch_sub(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        lk.unlock(ctx);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(total.load(), static_cast<int>(threads) * iters);
}

TEST(QueueScheduler, ContendedHandoffSpinPolicy) {
  native::Domain dom;
  Lock lk(dom, opts(SchedulerKind::kQueue, LockAttributes::spin()));
  contended_cycles(lk, dom, 4, 2'000);
  native::Context ctx(dom);
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

TEST(QueueScheduler, ContendedHandoffBlockingPolicy) {
  native::Domain dom;
  Lock lk(dom, opts(SchedulerKind::kQueue, LockAttributes::blocking()));
  contended_cycles(lk, dom, 4, 1'000);
  native::Context ctx(dom);
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
}

TEST(QueueScheduler, GrantOrderIsFifo) {
  // Arrivals are spaced far apart (100 ms) behind a held lock, so the
  // tail-swap order matches the release order of the start gates; the
  // grant chain must then pop the nodes in exactly that order.
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::vector<unsigned> order;
  std::atomic<unsigned> gate{0};
  std::vector<std::thread> waiters;
  for (unsigned t = 0; t < 3; ++t) {
    waiters.emplace_back([&, t] {
      native::Context tctx(dom);
      while (gate.load(std::memory_order_acquire) <= t) {
        std::this_thread::yield();
      }
      lk.lock(tctx);
      order.push_back(t);  // guarded by lk itself
      lk.unlock(tctx);
    });
  }
  for (unsigned t = 0; t < 3; ++t) {
    gate.fetch_add(1, std::memory_order_acq_rel);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  lk.unlock(ctx);
  for (auto& w : waiters) w.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(QueueScheduler, LockForTimesOutAndSelfRemoves) {
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::thread timed([&] {
    native::Context tctx(dom);
    // Times out while linked as the only node: tail self-removal.
    EXPECT_FALSE(lk.lock_for(tctx, 50'000'000));  // 50 ms
  });
  timed.join();
  lk.unlock(ctx);
  // The timed-out node unlinked itself: the lock is clean and reusable.
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
  lk.lock(ctx);
  lk.unlock(ctx);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

TEST(QueueScheduler, MiddleNodeTimeoutLeavesNeighborsLinked) {
  // W1 (no timeout) and W3 (no timeout) bracket W2 (short timeout): W2's
  // self-removal must relink W1->W3 so both still get granted.
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::atomic<int> granted{0};
  std::atomic<unsigned> arrived{0};
  std::thread w1([&] {
    native::Context tctx(dom);
    arrived.fetch_add(1, std::memory_order_acq_rel);
    lk.lock(tctx);
    granted.fetch_add(1, std::memory_order_relaxed);
    lk.unlock(tctx);
  });
  await([&] { return arrived.load(std::memory_order_acquire) == 1 &&
                     lk.state(ctx) == LockState::kLocked; }, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::atomic<bool> w2_done{false};
  std::thread w2([&] {
    native::Context tctx(dom);
    arrived.fetch_add(1, std::memory_order_acq_rel);
    EXPECT_FALSE(lk.lock_for(tctx, 60'000'000));  // 60 ms: times out
    w2_done.store(true, std::memory_order_release);
  });
  await([&] { return arrived.load(std::memory_order_acquire) == 2; }, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread w3([&] {
    native::Context tctx(dom);
    arrived.fetch_add(1, std::memory_order_acq_rel);
    lk.lock(tctx);
    granted.fetch_add(1, std::memory_order_relaxed);
    lk.unlock(tctx);
  });
  await([&] { return arrived.load(std::memory_order_acquire) == 3; }, true);
  // Hold until W2's deadline passes so it self-removes from the middle.
  await([&] { return w2_done.load(std::memory_order_acquire); }, true);
  lk.unlock(ctx);
  w1.join();
  w2.join();
  w3.join();
  EXPECT_EQ(granted.load(), 2);
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
}

TEST(QueueScheduler, MutexTryLockForOnQueueConfiguration) {
  // The ISSUE's try_lock_for surface: a native::Mutex reconfigured to
  // kQueue times out and recovers through the same node self-removal.
  native::Mutex m;
  auto& ctx = native::this_thread_context();
  m.underlying().configure_scheduler(ctx, SchedulerKind::kQueue);
  m.lock();
  std::thread timed([&] {
    EXPECT_FALSE(m.try_lock_for(40'000'000));  // 40 ms under a held lock
  });
  timed.join();
  m.unlock();
  EXPECT_TRUE(m.try_lock_for(40'000'000));
  m.unlock();
}

TEST(QueueScheduler, ReconfigureToAndFromQueueUnderLoad) {
  // Threads hammer lock cycles while the main thread flips the scheduler
  // kFcfs -> kQueue -> kNone -> kQueue -> kFcfs: every linked waiter must
  // survive each migration (none stranded, mutual exclusion preserved).
  native::Domain dom;
  Lock lk(dom, opts(SchedulerKind::kFcfs));
  std::atomic<bool> stop{false};
  std::atomic<int> inside{0};
  std::atomic<long> total{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      native::Context ctx(dom);
      while (!stop.load(std::memory_order_relaxed)) {
        lk.lock(ctx);
        ASSERT_EQ(inside.fetch_add(1, std::memory_order_relaxed), 0);
        inside.fetch_sub(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        lk.unlock(ctx);
      }
    });
  }
  {
    native::Context ctx(dom);
    const SchedulerKind plan[] = {
        SchedulerKind::kQueue, SchedulerKind::kNone, SchedulerKind::kQueue,
        SchedulerKind::kFcfs,  SchedulerKind::kQueue, SchedulerKind::kQueue,
        SchedulerKind::kPriorityQueue, SchedulerKind::kQueue};
    for (int round = 0; round < 40; ++round) {
      lk.configure_scheduler(ctx, plan[static_cast<std::size_t>(round) %
                                       (sizeof(plan) / sizeof(plan[0]))]);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  EXPECT_GT(total.load(), 0);
  native::Context ctx(dom);
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
  lk.lock(ctx);
  lk.unlock(ctx);
}

TEST(QueueScheduler, TimeoutsRacingReconfiguration) {
  // Conditional waiters (short timeouts) racing kind flips: a record that
  // registered against kQueue may be migrated into a centralized module
  // (or orphaned) before its deadline - withdrawal must find it wherever
  // it landed.
  native::Domain dom;
  Lock lk(dom, opts(SchedulerKind::kQueue));
  std::atomic<bool> stop{false};
  std::atomic<int> inside{0};
  std::thread holder([&] {
    native::Context ctx(dom);
    while (!stop.load(std::memory_order_relaxed)) {
      lk.lock(ctx);
      ASSERT_EQ(inside.fetch_add(1, std::memory_order_relaxed), 0);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      inside.fetch_sub(1, std::memory_order_relaxed);
      lk.unlock(ctx);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> timed;
  for (unsigned t = 0; t < 3; ++t) {
    timed.emplace_back([&] {
      native::Context ctx(dom);
      while (!stop.load(std::memory_order_relaxed)) {
        if (lk.lock_for(ctx, 200'000)) {  // 200 us: often times out
          ASSERT_EQ(inside.fetch_add(1, std::memory_order_relaxed), 0);
          inside.fetch_sub(1, std::memory_order_relaxed);
          lk.unlock(ctx);
        }
      }
    });
  }
  {
    native::Context ctx(dom);
    for (int round = 0; round < 30; ++round) {
      lk.configure_scheduler(ctx, round % 2 == 0 ? SchedulerKind::kFcfs
                                                 : SchedulerKind::kQueue);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  holder.join();
  for (auto& w : timed) w.join();
  native::Context ctx(dom);
  EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
  lk.lock(ctx);
  lk.unlock(ctx);
}

}  // namespace
}  // namespace relock
