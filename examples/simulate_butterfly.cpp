// Driving the Butterfly simulator directly: a custom experiment on the
// simulated 32-node NUMA machine comparing lock configurations under a
// workload you control. Use this as a template for your own studies.
//
// Build & run:  ./build/examples/simulate_butterfly
#include <cstdio>

#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"
#include "relock/workload/cs_workload.hpp"

using namespace relock;
using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;

namespace {

Nanos run_config(const char* name, ConfigurableLock<SimPlatform>::Options o) {
  Machine machine(MachineParams::butterfly());
  o.placement = Placement::on(0);
  ConfigurableLock<SimPlatform> lock(machine, o);

  workload::CsWorkloadConfig cfg;
  cfg.locking_threads = 16;
  cfg.iterations = 20;
  cfg.arrival = workload::ArrivalProcess::smooth(
      workload::Sampler::exponential(300'000));
  cfg.cs_length = workload::Sampler::uniform(20'000, 120'000);
  cfg.seed = 7;

  const auto result = workload::run_cs_workload(machine, lock, cfg);
  std::printf("%-34s %10.2f ms   (%llu remote refs, %llu ctx switches)\n",
              name, static_cast<double>(result.elapsed) / 1e6,
              static_cast<unsigned long long>(
                  result.machine.remote_references()),
              static_cast<unsigned long long>(
                  result.machine.context_switches));
  return result.elapsed;
}

}  // namespace

int main() {
  std::printf("32-node simulated Butterfly; 16 locking threads; "
              "CS uniform 20-120us; Poisson-ish arrivals\n\n");

  ConfigurableLock<SimPlatform>::Options centralized_spin;
  centralized_spin.scheduler = SchedulerKind::kNone;
  centralized_spin.attributes = LockAttributes::spin();
  centralized_spin.wait_placement = WaitPlacement::kLockHome;
  run_config("centralized spin", centralized_spin);

  ConfigurableLock<SimPlatform>::Options distributed_fcfs;
  distributed_fcfs.scheduler = SchedulerKind::kFcfs;
  distributed_fcfs.attributes = LockAttributes::spin();
  distributed_fcfs.wait_placement = WaitPlacement::kWaiterLocal;
  run_config("distributed FCFS spin", distributed_fcfs);

  ConfigurableLock<SimPlatform>::Options combined;
  combined.scheduler = SchedulerKind::kFcfs;
  combined.attributes = LockAttributes::combined(10);
  run_config("FCFS combined (spin 10, sleep)", combined);

  ConfigurableLock<SimPlatform>::Options blocking;
  blocking.scheduler = SchedulerKind::kFcfs;
  blocking.attributes = LockAttributes::blocking();
  run_config("FCFS blocking", blocking);

  std::printf("\n(Absolute values are virtual microseconds on the simulated "
              "machine;\n see bench/ for the paper's tables and figures.)\n");
  return 0;
}
