// Client-server scheduling example (the Table 7 scenario, natively).
//
// A server thread exchanges messages with client threads through a shared
// buffer protected by one configurable lock. The lock's scheduler is
// reconfigured at run time from FCFS to the priority-threshold scheduler;
// the server then raises the threshold while it is flooded, making clients
// ineligible until the backlog drains - the paper's dynamic priority lock.
//
// Build & run:  ./build/examples/client_server
#include <atomic>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

using relock::ConfigurableLock;
using NP = relock::native::NativePlatform;

namespace {

struct MessageBuffer {
  std::deque<int> requests;          // guarded by the lock
  std::vector<std::atomic<int>> replies;
  explicit MessageBuffer(std::size_t clients) : replies(clients) {}
};

}  // namespace

int main() {
  relock::native::Domain domain;

  ConfigurableLock<NP>::Options options;
  options.scheduler = relock::SchedulerKind::kFcfs;
  options.monitor_enabled = true;
  ConfigurableLock<NP> lock(domain, options);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 200;
  MessageBuffer buffer(kClients);
  std::atomic<int> served{0};
  std::atomic<bool> stop{false};

  std::thread server([&] {
    relock::native::Context ctx(domain, /*priority=*/10);

    // Reconfigure the scheduler on the fly: FCFS -> priority threshold.
    // (The change obeys the configuration delay if waiters are queued.)
    lock.possess(ctx, relock::AttributeClass::kScheduler);
    lock.configure_scheduler(ctx, relock::SchedulerKind::kPriorityThreshold);
    lock.release_possession(ctx, relock::AttributeClass::kScheduler);

    bool raised = false;
    while (!stop.load(std::memory_order_acquire)) {
      lock.lock(ctx);
      const std::size_t backlog = buffer.requests.size();
      int client = -1;
      if (!buffer.requests.empty()) {
        client = buffer.requests.front();
        buffer.requests.pop_front();
      }
      lock.unlock(ctx);

      // Flood control: raise the threshold above client priority while
      // flooded so the server's own acquisitions jump the queue.
      if (!raised && backlog >= 3) {
        lock.set_priority_threshold(ctx, 5);
        raised = true;
      } else if (raised && backlog <= 1) {
        lock.set_priority_threshold(ctx, 0);
        raised = false;
      }

      if (client >= 0) {
        buffer.replies[static_cast<std::size_t>(client)].store(
            1, std::memory_order_release);
        served.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      relock::native::Context ctx(domain, /*priority=*/0);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        lock.lock(ctx);
        buffer.requests.push_back(c);
        lock.unlock(ctx);
        while (buffer.replies[static_cast<std::size_t>(c)].exchange(0) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  server.join();

  std::printf("served %d requests (expected %d)\n", served.load(),
              kClients * kRequestsPerClient);
  std::printf("scheduler: %s\n", relock::to_string(lock.scheduler_kind()));
  const auto stats = lock.monitor().snapshot();
  std::printf("monitor: %llu acquisitions, %llu scheduler changes\n",
              static_cast<unsigned long long>(stats.acquisitions),
              static_cast<unsigned long long>(stats.scheduler_changes));
  return 0;
}
