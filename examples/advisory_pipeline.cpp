// Advisory (speculative) locks on a pipeline with variable-length stages -
// the Figure 8 scenario as a native program.
//
// A shared work queue is drained by workers whose critical sections take
// either a short or a long path. The owner knows which path it is on and
// advises waiters accordingly: sleep through a long tenure (announcing the
// expected duration), spin through a short one.
//
// Build & run:  ./build/examples/advisory_pipeline
#include <cstdio>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/rng.hpp"

using relock::ConfigurableLock;
using relock::Nanos;
using NP = relock::native::NativePlatform;

int main() {
  relock::native::Domain domain;

  ConfigurableLock<NP>::Options options;
  options.scheduler = relock::SchedulerKind::kFcfs;
  options.attributes = relock::LockAttributes::spin();
  options.advisory = true;  // waiters poll the owner's advice
  options.monitor_enabled = true;
  ConfigurableLock<NP> lock(domain, options);

  constexpr int kWorkers = 4;
  constexpr int kItemsPerWorker = 300;
  constexpr Nanos kShortPath = 5'000;     // 5 us
  constexpr Nanos kLongPath = 2'000'000;  // 2 ms

  std::uint64_t processed = 0;  // guarded by the lock

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      relock::native::Context ctx(domain);
      relock::Xoshiro256 rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kItemsPerWorker; ++i) {
        const bool long_path = rng.next_double() < 0.1;
        lock.lock(ctx);
        if (long_path) {
          // Long conditional path: tell waiters to sleep, and for how long.
          lock.advise(ctx, relock::Advice::kSleep, kLongPath);
          relock::spin_for(kLongPath * 7 / 8);
          lock.advise(ctx, relock::Advice::kSpin);  // nearly done
          relock::spin_for(kLongPath / 8);
        } else {
          lock.advise(ctx, relock::Advice::kSpin);
          relock::spin_for(kShortPath);
        }
        ++processed;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& t : workers) t.join();

  const auto stats = lock.monitor().snapshot();
  std::printf("processed %llu items\n",
              static_cast<unsigned long long>(processed));
  std::printf("waiters slept %llu times on the owner's advice; "
              "%llu spin probes\n",
              static_cast<unsigned long long>(stats.blocks),
              static_cast<unsigned long long>(stats.spin_probes));
  std::printf("mean wait %.0fus, max wait %.0fus\n",
              stats.mean_wait_ns() / 1000.0,
              static_cast<double>(stats.max_wait_ns) / 1000.0);
  return 0;
}
