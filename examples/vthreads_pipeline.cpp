// User-level threads (the paper's Cthreads-style substrate) running a
// bounded producer/consumer pipeline: many more vthreads than virtual
// processors, a blocking configurable lock protecting the buffer, a
// counting semaphore bounding it, and a barrier synchronizing phases.
// Blocking a vthread frees its virtual processor for other vthreads -
// exactly why the paper's blocking waiting policy exists.
//
// Build & run:  ./build/examples/vthreads_pipeline
#include <atomic>
#include <cstdio>
#include <deque>

#include "relock/core/configurable_lock.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/sync/semaphore.hpp"
#include "relock/vthreads/platform.hpp"
#include "relock/vthreads/runtime.hpp"

using namespace relock;
using vthreads::Runtime;
using vthreads::VThread;
using VP = vthreads::VthreadPlatform;

int main() {
  Runtime rt(/*virtual processors=*/2);

  constexpr int kProducers = 6;
  constexpr int kConsumers = 6;
  constexpr int kItemsPerProducer = 500;
  constexpr std::uint32_t kBufferCap = 16;

  // The shared buffer: a blocking configurable lock for mutual exclusion,
  // two semaphores for the bounded-buffer protocol.
  ConfigurableLock<VP>::Options lock_options;
  lock_options.scheduler = SchedulerKind::kFcfs;
  lock_options.attributes = LockAttributes::blocking();
  lock_options.monitor_enabled = true;
  ConfigurableLock<VP> lock(rt, lock_options);
  Semaphore<VP> slots(rt, kBufferCap, Placement::any(),
                      LockAttributes::blocking());
  Semaphore<VP> items(rt, 0, Placement::any(), LockAttributes::blocking());
  Barrier<VP> phase_barrier(rt, kProducers + kConsumers, Placement::any(),
                            LockAttributes::combined(32, kForever));

  std::deque<int> buffer;
  std::atomic<long> checksum{0};
  std::atomic<long> produced_sum{0};

  for (int p = 0; p < kProducers; ++p) {
    rt.spawn([&, p](VThread& t) {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        const int item = p * kItemsPerProducer + i;
        slots.acquire(t);
        lock.lock(t);
        buffer.push_back(item);
        lock.unlock(t);
        items.release(t);
        produced_sum.fetch_add(item);
      }
      phase_barrier.arrive_and_wait(t);  // phase boundary: all done
    });
  }

  constexpr int kItemsPerConsumer =
      kProducers * kItemsPerProducer / kConsumers;
  for (int c = 0; c < kConsumers; ++c) {
    rt.spawn([&](VThread& t) {
      for (int i = 0; i < kItemsPerConsumer; ++i) {
        items.acquire(t);
        lock.lock(t);
        const int item = buffer.front();
        buffer.pop_front();
        lock.unlock(t);
        slots.release(t);
        checksum.fetch_add(item);
      }
      phase_barrier.arrive_and_wait(t);
    });
  }

  rt.wait_all();

  std::printf("pipeline moved %d items across %u virtual processors\n",
              kProducers * kItemsPerProducer, rt.vproc_count());
  std::printf("checksum %ld (expected %ld), buffer leftover %zu\n",
              checksum.load(), produced_sum.load(), buffer.size());
  const auto stats = lock.monitor().snapshot();
  std::printf("buffer lock: %llu acquisitions, %llu waiter sleeps\n",
              static_cast<unsigned long long>(stats.acquisitions),
              static_cast<unsigned long long>(stats.blocks));
  return checksum.load() == produced_sum.load() && buffer.empty() ? 0 : 1;
}
