// Quickstart: the configurable lock on native threads.
//
// Demonstrates the minimal lifecycle: create a Domain, register threads,
// pick a lock configuration (Table 1 of the paper), and reconfigure the
// waiting policy at run time while the lock is in use.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

using relock::ConfigurableLock;
using NP = relock::native::NativePlatform;

int main() {
  relock::native::Domain domain;

  // A configurable lock with FCFS scheduling; waiters spin 100 probes and
  // then sleep (a "mixed sleep/spin" lock per Table 1).
  ConfigurableLock<NP>::Options options;
  options.scheduler = relock::SchedulerKind::kFcfs;
  options.attributes = relock::LockAttributes::combined(100);
  options.monitor_enabled = true;
  ConfigurableLock<NP> lock(domain, options);

  std::uint64_t counter = 0;  // protected by `lock`

  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      // Every thread that uses locks of a domain registers a context.
      relock::native::Context ctx(domain);
      for (int j = 0; j < kIters; ++j) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("counter = %llu (expected %llu)\n",
              static_cast<unsigned long long>(counter),
              static_cast<unsigned long long>(kThreads) * kIters);

  // Dynamic reconfiguration: flip the waiting policy to pure blocking.
  {
    relock::native::Context ctx(domain);
    lock.possess(ctx, relock::AttributeClass::kWaitingPolicy);
    lock.configure_waiting(ctx, relock::LockAttributes::blocking());
    lock.release_possession(ctx, relock::AttributeClass::kWaitingPolicy);
    std::printf("waiting policy now: %s\n",
                relock::to_string(relock::classify(lock.attributes())));

    // Conditional acquisition (a timeout-bounded lock).
    if (lock.lock_for(ctx, 1'000'000)) {
      std::printf("conditional acquisition succeeded\n");
      lock.unlock(ctx);
    }
  }

  const relock::LockStats stats = lock.monitor().snapshot();
  std::printf("monitor: %llu acquisitions, %llu contended (%.1f%%), "
              "mean hold %.0fns\n",
              static_cast<unsigned long long>(stats.acquisitions),
              static_cast<unsigned long long>(stats.contended_acquisitions),
              100.0 * stats.contention_ratio(), stats.mean_hold_ns());
  return 0;
}
