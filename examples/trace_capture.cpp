// Trace capture: record the lock's event stream and export it for
// chrome://tracing (or https://ui.perfetto.dev).
//
// Four contending threads hammer an FCFS handoff lock while the relock-
// trace registry records every semantic transition - arrivals, fast and
// slow acquisitions, parks, grants - into per-thread lock-free rings. The
// capture is then merged and written as Chrome Trace Event JSON: one track
// per thread, hold spans per acquisition, and flow arrows for each direct
// grant handoff between releaser and grantee.
//
// This target is compiled with RELOCK_TRACE=1 (see CMakeLists.txt); the
// rest of the build stays trace-free. Recording itself is still opt-in at
// runtime via Registry::set_enabled.
//
// Build & run:  ./build/examples/trace_capture [out.json]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/monitor/reporter.hpp"
#include "relock/platform/native.hpp"
#include "relock/trace/trace.hpp"

using NP = relock::native::NativePlatform;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "trace_capture.json";

  relock::native::Domain domain;
  relock::ConfigurableLock<NP>::Options options;
  options.scheduler = relock::SchedulerKind::kFcfs;
  options.attributes = relock::LockAttributes::combined(200);
  relock::ConfigurableLock<NP> lock(domain, options);

  // Pre-size and pre-allocate the rings, then switch recording on. From
  // here every lock operation appends 16-byte records with no allocation.
  auto& registry = relock::trace::Registry::instance();
  registry.set_ring_capacity(1u << 14);
  registry.preattach(8);
  registry.set_enabled(true);

  std::uint64_t counter = 0;  // protected by `lock`
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  // Start barrier: without it a fast machine can run the threads back to
  // back - four uncontended solo runs trace no handoffs at all.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      relock::native::Context ctx(domain);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int j = 0; j < kIters; ++j) {
        lock.lock(ctx);
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  registry.set_enabled(false);

  std::printf("counter = %llu (expected %llu)\n",
              static_cast<unsigned long long>(counter),
              static_cast<unsigned long long>(kThreads) * kIters);

  std::uint64_t dropped = 0;
  const long events = relock::write_chrome_trace(out_path, &dropped);
  if (events < 0) {
    std::perror(out_path);
    return 1;
  }
  std::printf("wrote %s: %ld events (%llu dropped to ring overflow)\n",
              out_path, events, static_cast<unsigned long long>(dropped));
  std::printf("open chrome://tracing and load the file to see per-thread\n"
              "hold spans and grant-handoff flow arrows\n");
  return 0;
}
