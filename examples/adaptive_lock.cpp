// Adaptive lock: the monitor -> policy -> reconfiguration feedback loop
// (the paper's future-work direction, realized by relock/adapt).
//
// Workers drive a lock through two workload phases: short critical
// sections, then long ones. An external monitoring agent periodically
// evaluates the lock's statistics with a hysteresis policy and reconfigures
// the waiting policy (spin <-> combined spin/sleep) to match the phase.
//
// Build & run:  ./build/examples/adaptive_lock
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "relock/adapt/adaptor.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"

using relock::ConfigurableLock;
using relock::Nanos;
using NP = relock::native::NativePlatform;

int main() {
  relock::native::Domain domain;

  ConfigurableLock<NP>::Options options;
  options.scheduler = relock::SchedulerKind::kFcfs;
  options.attributes = relock::LockAttributes::spin();
  options.monitor_enabled = true;
  ConfigurableLock<NP> lock(domain, options);

  relock::adapt::SpinBlockHysteresisPolicy::Params policy_params;
  policy_params.block_above_ns = 300'000.0;  // long phase: >300us holds
  policy_params.spin_below_ns = 50'000.0;
  policy_params.min_samples = 4;
  relock::adapt::Adaptor<NP> adaptor(
      lock, std::make_unique<relock::adapt::SpinBlockHysteresisPolicy>(
                policy_params));

  std::atomic<bool> stop{false};
  std::atomic<Nanos> cs_length{10'000};  // phase knob: 10us -> 1ms -> 10us

  constexpr int kWorkers = 2;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      relock::native::Context ctx(domain);
      while (!stop.load(std::memory_order_acquire)) {
        lock.lock(ctx);
        relock::spin_for(cs_length.load(std::memory_order_relaxed));
        lock.unlock(ctx);
        relock::spin_for(5'000);
      }
    });
  }

  // The external agent: samples the monitor every 50ms and reconfigures.
  std::thread agent([&] {
    relock::native::Context ctx(domain);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (adaptor.step(ctx)) {
        std::printf("[agent] reconfigured waiting policy to: %s\n",
                    relock::to_string(relock::classify(lock.attributes())));
      }
    }
  });

  auto run_phase = [&](const char* name, Nanos cs, int millis) {
    std::printf("phase: %s (cs = %lluus)\n", name,
                static_cast<unsigned long long>(cs / 1000));
    cs_length.store(cs, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  };

  run_phase("short critical sections", 10'000, 400);
  run_phase("long critical sections", 1'000'000, 600);
  run_phase("short critical sections again", 10'000, 600);

  stop.store(true, std::memory_order_release);
  agent.join();
  for (auto& t : workers) t.join();

  std::printf("adaptations applied: %llu\n",
              static_cast<unsigned long long>(adaptor.actions_applied()));
  std::printf("final policy: %s\n",
              relock::to_string(relock::classify(lock.attributes())));
  return 0;
}
